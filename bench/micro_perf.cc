/**
 * @file
 * A3: google-benchmark microbenchmarks of the simulator and compiler
 * infrastructure itself (host-side throughput, not simulated
 * cycles) — useful for keeping the tool chain fast enough to sweep.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "compiler/profiler.hh"
#include "core/patch.hh"
#include "core/snoc.hh"
#include "cpu/core.hh"
#include "mem/addrmap.hh"

namespace
{

using namespace stitch;

/** Simulated instructions per second of the core interpreter. */
void
BM_CoreInterpreter(benchmark::State &state)
{
    auto input = kernels::kernelByName("fir").build({});
    mem::TileMemory memory;
    cpu::Core core(0, memory, nullptr, nullptr);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        core.loadProgram(input.program);
        core.runToHalt();
        instructions += core.instructionsRetired();
    }
    state.counters["sim_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreInterpreter);

/**
 * Single-core dispatch throughput of the step interpreter, in the
 * same "mips" units as the system-level benches so the two core
 * dispatch regimes compare directly.
 */
void
BM_CoreDispatch(benchmark::State &state)
{
    auto input = kernels::kernelByName("fir").build({});
    mem::TileMemory memory;
    cpu::Core core(0, memory, nullptr, nullptr);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        core.loadProgram(input.program);
        core.runToHalt();
        instructions += core.instructionsRetired();
    }
    state.counters["mips"] = benchmark::Counter(
        static_cast<double>(instructions) * 1e-6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreDispatch);

/**
 * The same kernel through the translation-cached compiled backend.
 * Each iteration reloads the program — which drops the translation
 * cache — so this number includes translating every block from
 * scratch, the cost a real run pays once per program load.
 */
void
BM_CoreDispatchCompiled(benchmark::State &state)
{
    auto input = kernels::kernelByName("fir").build({});
    mem::TileMemory memory;
    cpu::Core core(0, memory, nullptr, nullptr);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        core.loadProgram(input.program);
        core.runToHaltCompiled();
        instructions += core.instructionsRetired();
    }
    state.counters["mips_compiled"] = benchmark::Counter(
        static_cast<double>(instructions) * 1e-6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreDispatchCompiled);

/** Full compile-and-measure of one kernel across all 13 targets. */
void
BM_CompileKernel(benchmark::State &state)
{
    auto input = kernels::kernelByName("update").build({});
    for (auto _ : state) {
        auto compiled = compiler::compileKernel("update", input);
        benchmark::DoNotOptimize(compiled.variants.size());
    }
}
BENCHMARK(BM_CompileKernel)->Unit(benchmark::kMillisecond);

/** Profiling pass alone. */
void
BM_ProfileKernel(benchmark::State &state)
{
    auto input = kernels::kernelByName("fft").build({});
    for (auto _ : state) {
        auto prof = compiler::profileProgram(input.program);
        benchmark::DoNotOptimize(prof.totalCycles);
    }
}
BENCHMARK(BM_ProfileKernel)->Unit(benchmark::kMicrosecond);

/** One fused patch evaluation (the per-CUST simulator cost). */
void
BM_FusedPatchExecute(benchmark::State &state)
{
    core::FusedConfig cfg;
    cfg.localKind = core::PatchKind::ATMA;
    cfg.local.a1op = core::AluOp::Pass;
    cfg.local.u1Lhs = core::U1Lhs::In1;
    cfg.local.u1Rhs = core::U1Rhs::In2;
    cfg.local.aop2 = core::AluOp::Add;
    cfg.local.outCfg = core::OutCfg::S2;
    cfg.usesRemote = true;
    cfg.remoteKind = core::PatchKind::ATAS;
    cfg.remote.a1op = core::AluOp::Pass;
    cfg.remote.outCfg = core::OutCfg::S1;
    core::NullSpmPort null1;

    class Dummy : public core::SpmPort
    {
      public:
        Word load(Addr) override { return 7; }
        void store(Addr, Word) override {}
    } spm;

    std::array<Word, 4> in = {1, 2, 3, 4};
    for (auto _ : state) {
        auto res = core::executeCustom(cfg, in, spm, &null1);
        benchmark::DoNotOptimize(res.rd0);
        in[1] += res.rd0;
    }
}
BENCHMARK(BM_FusedPatchExecute);

/** Compiler-time sNoC routing (Algorithm 1's FindPath). */
void
BM_SnocFusionRouting(benchmark::State &state)
{
    auto arch = stitch::core::StitchArch::standard();
    for (auto _ : state) {
        core::SnocConfig snoc;
        int routed = 0;
        for (TileId t = 0; t < numTiles; t += 2)
            routed += snoc.addFusion(t, arch.kindOf(t), t + 1,
                                     arch.kindOf(t + 1))
                          .has_value();
        benchmark::DoNotOptimize(routed);
    }
}
BENCHMARK(BM_SnocFusionRouting)->Unit(benchmark::kMicrosecond);

/**
 * Sixteen-tile application simulation (APP3, baseline mode). The
 * "mips" counter (millions of simulated instructions per host
 * second) is the headline simulator-throughput number the bench
 * trajectory tracks across revisions.
 */
void
BM_SystemSimulation(benchmark::State &state)
{
    apps::AppRunner runner(2, 4);
    runner.setScheduler(bench::schedulerFlag());
    auto app = apps::app3SvmEncrypt();
    // Warm the compile cache outside the timed region.
    runner.run(app, apps::AppMode::Baseline);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        auto res = runner.run(app, apps::AppMode::Baseline);
        instructions += res.stats.instructions;
        benchmark::DoNotOptimize(res.stats.makespan);
    }
    state.counters["mips"] = benchmark::Counter(
        static_cast<double>(instructions) * 1e-6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemSimulation)->Unit(benchmark::kMillisecond);

/**
 * The same sixteen-tile simulation under the compiled scheduler. Its
 * "mips_compiled" counter is the headline number for the translation
 * cache: the trajectory tracks it next to BM_SystemSimulation/mips,
 * and the two runs are byte-identical by the parity tests.
 */
void
BM_SystemSimulationCompiled(benchmark::State &state)
{
    apps::AppRunner runner(2, 4);
    runner.setScheduler(sim::SchedulerKind::Compiled);
    auto app = apps::app3SvmEncrypt();
    // Warm the compile cache outside the timed region.
    runner.run(app, apps::AppMode::Baseline);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        auto res = runner.run(app, apps::AppMode::Baseline);
        instructions += res.stats.instructions;
        benchmark::DoNotOptimize(res.stats.makespan);
    }
    state.counters["mips_compiled"] = benchmark::Counter(
        static_cast<double>(instructions) * 1e-6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemSimulationCompiled)->Unit(benchmark::kMillisecond);

/**
 * Capture every run's headline numbers into the shared stitch-bench
 * metrics map, so `micro_perf --json=PATH` emits the same schema as
 * the table/figure harnesses and the trajectory aggregator treats
 * host-side throughput like any other tracked metric. Counters reach
 * the reporter already rate-adjusted.
 */
class MetricCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            std::string name = run.benchmark_name();
            bench::recordMetric(name + "/real_time_ns",
                                run.GetAdjustedRealTime());
            for (const auto &[counter, value] : run.counters)
                bench::recordMetric(name + "/" + counter,
                                    value.value);
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    bench::benchName() = "micro_perf";
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i)
        if (i == 0 || (!bench::parseJsonFlag(argv[i]) &&
                       !bench::parseSchedulerFlag(argv[i])))
            args.push_back(argv[i]);
    int filtered = static_cast<int>(args.size());
    benchmark::Initialize(&filtered, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered, args.data()))
        return 1;
    MetricCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    bench::writeBenchJson();
    return 0;
}

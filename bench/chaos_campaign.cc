/**
 * @file
 * Service-tier chaos campaign: sweep deterministic ServiceFaultPlan
 * scenarios over self-contained JobEngines (and in-process wire
 * round-trips) and tabulate how the service degrades — the service
 * mirror of bench/fault_campaign.cc, one level up.
 *
 * Every scenario arms one (or a mix) of the injectable failure modes:
 * worker exceptions, worker stalls (with and without deadlines),
 * cache write failures and torn entries (with a recovery pass),
 * admission-control overload, and wire-level connection resets and
 * malformed frames against a live in-process svc::Server. The
 * campaign asserts the resilience contract (DESIGN.md §13): every
 * outcome is *typed* — completed, "injected", "deadline", shed,
 * rejected, or a typed wire error — and the process never dies.
 *
 * Determinism: each scenario runs its own single-worker engine, and
 * every injection is a pure function of (seed, mechanism, identity),
 * so a scenario's outcome counts depend only on its seed. Scenarios
 * are independent and the table is built in index order after the
 * sweep, so stdout and the --json metrics document are byte-identical
 * for any --jobs value; re-running with the same seeds reproduces the
 * table exactly.
 *
 * Usage: chaos_campaign [--jobs=N] [--json=FILE] [--flight-dir=DIR]
 *        [obs switches]
 * Exits non-zero if any scenario produced an *untyped* failure or a
 * scenario that must fully complete (healthy, retry-covered resets)
 * did not.
 *
 * --flight-dir arms every scenario engine's flight recorder: each
 * typed failure the campaign provokes leaves a
 * flight-<traceid>.jsonl black box in DIR (the artifact CI uploads
 * when a chaos job goes red). Recording never touches outcome
 * counts, so the table stays byte-identical with or without it.
 */

#include <cstdint>
#include <filesystem>
#include <thread>
#include <unistd.h>

#include "bench/bench_common.hh"
#include "svc/engine.hh"
#include "svc/server.hh"

using namespace stitch;
using namespace stitch::bench;

namespace
{

namespace fs = std::filesystem;

/** --flight-dir: when set, every scenario engine records and dumps
 *  per-job flight black boxes here. */
std::string &
flightDirFlag()
{
    static std::string dir;
    return dir;
}

/** One campaign scenario: a fault plan plus the engine/client knobs
 *  it exercises. */
struct Scenario
{
    std::string name;
    svc::ServiceFaultPlan plan;
    svc::RetryPolicy retry;          ///< engine or wire retry budget
    std::size_t maxQueueDepth = 0;   ///< admission bound (0 = off)
    std::uint64_t deadlineMs = 0;    ///< applied to every job
    int njobs = 6;                   ///< submissions (or wire requests)
    bool mixedPriorities = false;    ///< bands i%3 (admission tests)
    bool useDisk = false;            ///< scenario gets a scratch dir
    bool recoverPass = false;        ///< re-open the dir, count scan
    bool wire = false;               ///< drive an in-process Server
};

/** Typed outcome counts of one scenario — everything the table and
 *  the metrics document need, and nothing wall-clock-dependent, so
 *  the campaign output is byte-identical for any --jobs value. */
struct Outcome
{
    int jobs = 0;
    int completed = 0;
    int cached = 0;
    int injectedFail = 0; ///< errorKind "injected" (retry exhausted)
    int deadlineFail = 0; ///< errorKind "deadline"
    int shed = 0;
    int rejected = 0;     ///< OverloadedError at submit
    int otherFail = 0;    ///< anything untyped — must stay 0
    std::uint64_t retries = 0;
    std::uint64_t injectedThrows = 0;
    std::uint64_t injectedStalls = 0;
    std::uint64_t watchdogTrips = 0;
    std::uint64_t writeFailures = 0;
    std::uint64_t tornWrites = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t tmpSwept = 0;
    bool degraded = false;
    // Wire scenarios.
    int wireOk = 0;
    int wireTypedError = 0; ///< typed error response ("config", ...)
    int wireTransport = 0;  ///< transport failure after the budget
    int wireAttempts = 0;   ///< attempts summed over requests
};

/** A cheap, distinct job: baseline mode, tiny sample count varied by
 *  index so each submission has its own cache identity. */
svc::JobSpec
smallJob(int index, int priority, std::uint64_t deadlineMs)
{
    svc::JobSpec spec;
    spec.name = strformat("chaos-job-%02d", index);
    spec.app = "APP1-gesture";
    spec.mode = apps::AppMode::Baseline;
    spec.samplesShort = 1;
    spec.samplesLong = 2 + index % 4;
    spec.priority = priority;
    spec.deadlineMs = deadlineMs;
    return spec;
}

std::uint64_t
resilienceCounter(const obs::Json &report, const char *name)
{
    const obs::Json &res =
        report.get("counters").get("svc").get("resilience");
    return res.has(name) ? res.get(name).asUint() : 0;
}

void
foldCacheStats(Outcome &out, const svc::ResultCache::Stats &stats)
{
    out.writeFailures += stats.writeFailures;
    out.tornWrites += stats.tornWrites;
    out.quarantined += stats.quarantined;
    out.tmpSwept += stats.tmpSwept;
    out.degraded = out.degraded || stats.degraded;
}

/** Run one engine-path scenario to completion and tabulate. */
Outcome
runEngineScenario(const Scenario &sc, const std::string &scratchDir)
{
    Outcome out;
    svc::EngineOptions options;
    options.jobs = 1; // single worker: replays the seed exactly
    options.chaos = sc.plan;
    options.retry = sc.retry;
    options.maxQueueDepth = sc.maxQueueDepth;
    options.watchdogPollMs = 2;
    if (sc.useDisk)
        options.cacheDir = scratchDir;
    if (!flightDirFlag().empty()) {
        options.flightRecorder = true;
        options.flightDir = flightDirFlag();
    }
    svc::JobEngine engine(options);

    // In stall scenarios, arm the deadline only on jobs whose first
    // attempt the plan stalls (a pure function of the seed — job ids
    // are dense submit ordinals here). A stalled attempt always
    // overshoots the deadline and a deadline-free job can never trip
    // it, so the outcome counts stay wall-clock-independent even
    // when the sweep loads every core.
    const svc::ServiceFaultInjector probe(sc.plan);
    std::vector<int> ids;
    for (int i = 0; i < sc.njobs; ++i) {
        ++out.jobs;
        const int priority = sc.mixedPriorities ? i % 3 : 0;
        std::uint64_t deadlineMs = sc.deadlineMs;
        if (deadlineMs && sc.plan.workerStallProb > 0.0 &&
            probe.stallUs(i, 1) == 0)
            deadlineMs = 0;
        try {
            ids.push_back(engine.submit(
                smallJob(i, priority, deadlineMs)));
        } catch (const svc::OverloadedError &) {
            ++out.rejected;
        }
    }
    engine.run();

    for (int id : ids) {
        const svc::JobResult &r = engine.result(id);
        out.retries += static_cast<std::uint64_t>(r.attempts - 1);
        switch (r.status) {
        case svc::JobResult::Status::Completed:
            ++out.completed;
            if (r.cached)
                ++out.cached;
            break;
        case svc::JobResult::Status::Shed:
            ++out.shed;
            break;
        case svc::JobResult::Status::Failed:
            if (r.errorKind == "injected")
                ++out.injectedFail;
            else if (r.errorKind == "deadline")
                ++out.deadlineFail;
            else
                ++out.otherFail;
            break;
        default:
            ++out.otherFail;
            break;
        }
    }

    const obs::Json report = engine.serviceReportJson();
    out.injectedThrows = resilienceCounter(report, "injected_throws");
    out.injectedStalls = resilienceCounter(report, "injected_stalls");
    out.watchdogTrips = resilienceCounter(report, "watchdog_trips");
    foldCacheStats(out, engine.cache().stats());

    if (sc.recoverPass) {
        // Re-open the store the way a restarted stitchd would: the
        // constructor's recovery scan must sweep orphans and
        // quarantine every torn entry this scenario left behind.
        svc::ResultCache reopened(scratchDir);
        const svc::ResultCache::Stats scan = reopened.stats();
        out.quarantined += scan.quarantined;
        out.tmpSwept += scan.tmpSwept;
    }
    return out;
}

/** Run one wire-path scenario: an in-process Server on a free port,
 *  a serve thread, and a chaos-armed retrying client. */
Outcome
runWireScenario(const Scenario &sc)
{
    Outcome out;
    svc::EngineOptions options;
    options.jobs = 1;
    if (!flightDirFlag().empty()) {
        options.flightRecorder = true;
        options.flightDir = flightDirFlag();
    }
    svc::JobEngine engine(options);
    svc::Server server(engine);
    std::thread serveThread([&] { server.serve(); });

    svc::ServiceFaultInjector chaos(sc.plan);
    for (int i = 0; i < sc.njobs; ++i) {
        ++out.jobs;
        int attempts = 0;
        try {
            obs::Json response = svc::requestReportWithRetry(
                "127.0.0.1", server.port(),
                smallJob(i, 0, 0).toJson(), sc.retry,
                static_cast<std::uint64_t>(i), &chaos, &attempts);
            if (response.get("status").asString() == "ok") {
                ++out.wireOk;
                ++out.completed;
            } else {
                ++out.wireTypedError;
            }
        } catch (const fault::ConfigError &) {
            // Transport failure with the retry budget spent: typed
            // on this side too, never a crash.
            ++out.wireTransport;
        }
        out.wireAttempts += attempts;
    }

    server.stop();
    serveThread.join();
    return out;
}

std::vector<Scenario>
buildScenarios()
{
    std::vector<Scenario> all;
    auto add = [&](Scenario sc) { all.push_back(std::move(sc)); };

    svc::RetryPolicy fastRetry;
    fastRetry.maxAttempts = 4;
    fastRetry.baseDelayMs = 0.05;
    fastRetry.maxDelayMs = 0.5;

    // Healthy baseline: duplicates exercise the cache path, nothing
    // injected, everything must complete.
    {
        Scenario sc;
        sc.name = "healthy";
        sc.njobs = 8; // indices repeat mod 4 -> 4 cached
        add(sc);
    }

    // Worker exceptions, retried in place by the owning worker.
    for (int i = 0; i < 4; ++i) {
        Scenario sc;
        sc.name = strformat("worker throw p=%.2f retry=4 seed=%d",
                            0.25 * (i + 1), 101 + i);
        sc.plan = svc::ServiceFaultPlan::workerThrows(
            0.25 * (i + 1), static_cast<std::uint64_t>(101 + i));
        sc.retry = fastRetry;
        sc.retry.seed = static_cast<std::uint64_t>(101 + i);
        add(sc);
    }
    // ... without a retry budget: typed "injected" failures.
    for (int seed : {201, 202}) {
        Scenario sc;
        sc.name = strformat("worker throw p=0.60 no-retry seed=%d",
                            seed);
        sc.plan = svc::ServiceFaultPlan::workerThrows(
            0.6, static_cast<std::uint64_t>(seed));
        add(sc);
    }
    // ... and guaranteed exhaustion: every attempt of every job
    // throws, so every job burns the full budget and fails typed.
    {
        Scenario sc;
        sc.name = "worker throw p=1.00 retry=3 seed=210 (exhaust)";
        sc.plan = svc::ServiceFaultPlan::workerThrows(1.0, 210);
        sc.retry = fastRetry;
        sc.retry.maxAttempts = 3;
        sc.retry.seed = 210;
        add(sc);
    }

    // Stalled workers against the deadline watchdog. The deadline is
    // far above a real (few-ms) job and far below the injected stall,
    // so only stalled attempts trip it — outcomes stay a pure
    // function of the seed even when the sweep loads every core.
    for (int seed : {301, 302, 303}) {
        Scenario sc;
        sc.name = strformat("stall 300ms deadline 100ms seed=%d",
                            seed);
        sc.plan = svc::ServiceFaultPlan::workerStalls(
            1.0, 300, static_cast<std::uint64_t>(seed));
        sc.deadlineMs = 100;
        sc.njobs = 3;
        add(sc);
    }
    {
        Scenario sc;
        sc.name = "stall 3ms no deadline seed=304";
        sc.plan = svc::ServiceFaultPlan::workerStalls(1.0, 3, 304);
        sc.njobs = 4;
        add(sc);
    }
    {
        Scenario sc;
        sc.name = "stall p=0.50 300ms deadline 100ms seed=305";
        sc.plan = svc::ServiceFaultPlan::workerStalls(0.5, 300, 305);
        sc.deadlineMs = 100;
        add(sc);
    }
    {
        Scenario sc;
        // Generous enough that no real job can trip it even on a
        // loaded sanitizer build — this scenario pins "an armed
        // watchdog with slack is free", not a wall-clock race.
        sc.name = "generous deadline 60s (watchdog armed, idle)";
        sc.deadlineMs = 60000;
        add(sc);
    }

    // Cache write failures: consecutive losses must degrade to
    // memory-only mode without failing a single job.
    for (int seed : {401, 402}) {
        Scenario sc;
        sc.name = strformat("cache write fail p=1.00 seed=%d", seed);
        sc.plan = svc::ServiceFaultPlan::cacheWriteFailures(
            1.0, static_cast<std::uint64_t>(seed));
        sc.useDisk = true;
        sc.njobs = 5;
        add(sc);
    }
    {
        Scenario sc;
        sc.name = "cache write fail p=0.40 seed=403";
        sc.plan = svc::ServiceFaultPlan::cacheWriteFailures(0.4, 403);
        sc.useDisk = true;
        sc.njobs = 5;
        add(sc);
    }

    // Torn entries + the restarted-daemon recovery scan.
    for (int seed : {501, 502}) {
        Scenario sc;
        sc.name = strformat("torn cache p=1.00 + recover seed=%d",
                            seed);
        sc.plan = svc::ServiceFaultPlan::tornCacheEntries(
            1.0, static_cast<std::uint64_t>(seed));
        sc.useDisk = true;
        sc.recoverPass = true;
        sc.njobs = 4;
        add(sc);
    }
    {
        Scenario sc;
        sc.name = "torn cache p=0.50 + recover seed=503";
        sc.plan = svc::ServiceFaultPlan::tornCacheEntries(0.5, 503);
        sc.useDisk = true;
        sc.recoverPass = true;
        sc.njobs = 6;
        add(sc);
    }

    // Admission control: bounded queues under a 12-deep burst.
    for (std::size_t depth : {3u, 4u, 6u}) {
        Scenario sc;
        sc.name = strformat("admission depth=%zu mixed bands", depth);
        sc.maxQueueDepth = depth;
        sc.mixedPriorities = true;
        sc.njobs = 12;
        add(sc);
    }
    {
        Scenario sc;
        sc.name = "admission depth=2 uniform band (reject-only)";
        sc.maxQueueDepth = 2;
        sc.njobs = 8;
        add(sc);
    }

    // Mixed chaos: throws + stalls + cache losses at once.
    for (int seed : {601, 602}) {
        Scenario sc;
        sc.name = strformat("mixed chaos retry=4 seed=%d", seed);
        sc.plan.seed = static_cast<std::uint64_t>(seed);
        sc.plan.workerThrowProb = 0.3;
        sc.plan.workerStallProb = 0.3;
        sc.plan.stallMs = 2;
        sc.plan.cacheWriteFailProb = 0.3;
        sc.retry = fastRetry;
        sc.retry.seed = static_cast<std::uint64_t>(seed);
        sc.useDisk = true;
        add(sc);
    }

    // Wire chaos against a live in-process server.
    svc::RetryPolicy wireRetry = fastRetry;
    wireRetry.maxAttempts = 6;
    for (int seed : {701, 702}) {
        Scenario sc;
        sc.name = strformat("wire reset p=0.50 retry=6 seed=%d",
                            seed);
        sc.plan = svc::ServiceFaultPlan::connectionResets(
            0.5, static_cast<std::uint64_t>(seed));
        sc.retry = wireRetry;
        sc.retry.seed = static_cast<std::uint64_t>(seed);
        sc.wire = true;
        sc.njobs = 4;
        add(sc);
    }
    {
        Scenario sc;
        sc.name = "wire reset p=1.00 retry=3 seed=703 (exhaust)";
        sc.plan = svc::ServiceFaultPlan::connectionResets(1.0, 703);
        sc.retry = fastRetry;
        sc.retry.maxAttempts = 3;
        sc.retry.seed = 703;
        sc.wire = true;
        sc.njobs = 3;
        add(sc);
    }
    for (int seed : {801, 802}) {
        Scenario sc;
        sc.name = strformat("wire malformed p=0.50 seed=%d", seed);
        sc.plan = svc::ServiceFaultPlan::malformedFrames(
            0.5, static_cast<std::uint64_t>(seed));
        sc.wire = true;
        sc.njobs = 6;
        add(sc);
    }
    {
        Scenario sc;
        sc.name = "wire malformed p=1.00 seed=803";
        sc.plan = svc::ServiceFaultPlan::malformedFrames(1.0, 803);
        sc.wire = true;
        sc.njobs = 4;
        add(sc);
    }
    return all;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    for (int i = 1; i < argc; ++i)
        if (cli::keyedValue(argv[i], "--flight-dir=",
                            &flightDirFlag()))
            fs::create_directories(flightDirFlag());

    const std::vector<Scenario> scenarios = buildScenarios();
    printHeader("Chaos campaign",
                strformat("%zu deterministic service-tier fault "
                          "scenarios, every outcome typed",
                          scenarios.size())
                    .c_str());

    // Per-process scratch root: scenarios get dirs by index, so the
    // campaign is re-runnable and parallel scenarios never collide.
    const fs::path scratchRoot =
        fs::temp_directory_path() /
        strformat("stitch_chaos_%d", static_cast<int>(::getpid()));
    fs::remove_all(scratchRoot);

    sim::SweepRunner runner(bench::jobsFlag());
    const std::vector<Outcome> outcomes = runner.map(
        static_cast<int>(scenarios.size()), [&](int i) {
            const Scenario &sc = scenarios[static_cast<size_t>(i)];
            if (sc.wire)
                return runWireScenario(sc);
            const fs::path dir =
                scratchRoot / strformat("s%02d", i);
            if (sc.useDisk)
                fs::create_directories(dir);
            return runEngineScenario(sc, dir.string());
        });
    fs::remove_all(scratchRoot);

    TextTable table({"scenario", "jobs", "ok", "fail", "kinds",
                     "shed", "rej", "retries", "notes"});
    Outcome total;
    int untyped = 0, mustCompleteMisses = 0;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario &sc = scenarios[i];
        const Outcome &out = outcomes[i];

        std::string kinds;
        auto kind = [&](const char *name, int count) {
            if (count)
                kinds += strformat("%s%s:%d", kinds.empty() ? "" : " ",
                                   name, count);
        };
        kind("injected", out.injectedFail);
        kind("deadline", out.deadlineFail);
        kind("wire-error", out.wireTypedError);
        kind("transport", out.wireTransport);
        kind("UNTYPED", out.otherFail);

        std::string notes;
        auto note = [&](std::string text) {
            notes += (notes.empty() ? "" : ", ") + std::move(text);
        };
        if (out.cached)
            note(strformat("cached:%d", out.cached));
        if (out.degraded)
            note("degraded");
        if (out.writeFailures)
            note(strformat("wfail:%llu",
                           static_cast<unsigned long long>(
                               out.writeFailures)));
        if (out.quarantined)
            note(strformat("quarantined:%llu",
                           static_cast<unsigned long long>(
                               out.quarantined)));
        if (out.watchdogTrips)
            note(strformat("watchdog:%llu",
                           static_cast<unsigned long long>(
                               out.watchdogTrips)));
        if (out.wireAttempts)
            note(strformat("attempts:%d", out.wireAttempts));

        const int failed = out.injectedFail + out.deadlineFail +
                           out.wireTypedError + out.wireTransport +
                           out.otherFail;
        table.addRow({sc.name, std::to_string(out.jobs),
                      std::to_string(out.completed),
                      std::to_string(failed), kinds,
                      std::to_string(out.shed),
                      std::to_string(out.rejected),
                      std::to_string(static_cast<int>(out.retries)),
                      notes});

        untyped += out.otherFail;
        // Scenarios whose retry budget covers the fault must end
        // fully green: the healthy baseline and the p=0.5 resets
        // with six attempts.
        const bool mustComplete =
            sc.name == "healthy" ||
            sc.name.rfind("wire reset p=0.50", 0) == 0;
        if (mustComplete && out.completed != out.jobs)
            ++mustCompleteMisses;

        total.jobs += out.jobs;
        total.completed += out.completed;
        total.cached += out.cached;
        total.injectedFail += out.injectedFail;
        total.deadlineFail += out.deadlineFail;
        total.shed += out.shed;
        total.rejected += out.rejected;
        total.otherFail += out.otherFail;
        total.retries += out.retries;
        total.injectedThrows += out.injectedThrows;
        total.injectedStalls += out.injectedStalls;
        total.watchdogTrips += out.watchdogTrips;
        total.writeFailures += out.writeFailures;
        total.tornWrites += out.tornWrites;
        total.quarantined += out.quarantined;
        total.tmpSwept += out.tmpSwept;
        total.degraded = total.degraded || out.degraded;
        total.wireOk += out.wireOk;
        total.wireTypedError += out.wireTypedError;
        total.wireTransport += out.wireTransport;
        total.wireAttempts += out.wireAttempts;
    }
    table.print();

    const int typedFailures = total.injectedFail + total.deadlineFail +
                              total.wireTypedError +
                              total.wireTransport;
    std::printf(
        "\n%zu scenarios, %d jobs: %d completed, %d typed failures, "
        "%d shed, %d rejected, %d untyped, 0 process-fatal\n",
        scenarios.size(), total.jobs, total.completed, typedFailures,
        total.shed, total.rejected, untyped);

    recordMetric("scenarios", static_cast<int>(scenarios.size()));
    recordMetric("jobs_total", total.jobs);
    recordMetric("completed_total", total.completed);
    recordMetric("typed_failures_total", typedFailures);
    recordMetric("untyped_failures", untyped);
    recordMetric("process_fatal", 0);
    recordMetric("shed_total", total.shed);
    recordMetric("rejected_total", total.rejected);
    recordMetric("retries_total", static_cast<int>(total.retries));
    recordMetric("deadline_failures",
                 static_cast<int>(total.deadlineFail));
    recordMetric("injected_failures",
                 static_cast<int>(total.injectedFail));
    recordMetric("cache_write_failures",
                 static_cast<int>(total.writeFailures));
    recordMetric("cache_torn_writes",
                 static_cast<int>(total.tornWrites));
    recordMetric("cache_quarantined",
                 static_cast<int>(total.quarantined));
    recordMetric("wire_ok", total.wireOk);
    recordMetric("wire_typed_errors", total.wireTypedError);
    recordMetric("wire_transport_failures", total.wireTransport);
    recordMetric("wire_attempts", total.wireAttempts);

    if (untyped || mustCompleteMisses) {
        std::fprintf(stderr,
                     "chaos_campaign: %d untyped failures, %d "
                     "must-complete scenarios incomplete\n",
                     untyped, mustCompleteMisses);
        return 1;
    }
    return 0;
}

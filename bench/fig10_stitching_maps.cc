/**
 * @file
 * E3 / paper Figure 10: how Algorithm 1 stitches the polymorphic
 * patches for each application — kernel placement, chosen
 * accelerator, fusion partners, hop counts and the resulting
 * inter-patch NoC configuration.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Figure 10", "patch stitching per application");

    auto arch = core::StitchArch::standard();
    for (const auto &app : apps::allApps()) {
        const auto &res = appResult(app, apps::AppMode::Stitch);
        std::printf("\n--- %s ---\n", app.name.c_str());

        std::vector<compiler::KernelProfile> profiles;
        for (int k = 0;
             k < static_cast<int>(app.stageKernels.size()); ++k) {
            compiler::KernelProfile p;
            p.name = strformat(
                "%s#%d",
                app.stageKernels[static_cast<std::size_t>(k)].c_str(),
                k);
            profiles.push_back(p);
        }
        std::printf("%s",
                    res.plan.describe(profiles, arch).c_str());

        int paths = static_cast<int>(res.plan.snoc.paths().size());
        recordMetric(app.name + "/snoc_paths", paths);
        recordMetric(app.name + "/bottleneck_cycles",
                     res.plan.bottleneckCycles());
        std::string why;
        std::printf(
            "sNoC: %d preset paths, configuration %s\n", paths,
            res.plan.snoc.validate(&why) ? "valid (contention-free)"
                                         : why.c_str());
    }

    std::printf(
        "\nPaper behaviour reproduced: different applications lead "
        "to different\nstitchings; when the preferred pair runs out "
        "(APP2's seven heavy conv\nkernels vs four {AT-AS}+{AT-MA} "
        "pairs) other patch kinds are utilized.\n");
    return 0;
}

/**
 * @file
 * E11 / paper Section III-C: replacing the 4 KB data cache with a
 * 4 KB SPM costs at most ~1.5% on software-only kernels when the hot
 * variables map to the SPM.
 *
 * We build each kernel twice: hot arrays in the SPM window (Stitch
 * memory: 4 KB D$ + 4 KB SPM) vs the same arrays in cached DRAM
 * (baseline memory: 8 KB D$, no SPM), and compare software-only
 * cycles. Kernel sources are identical up to the array base
 * addresses.
 */

#include "bench/bench_common.hh"
#include "compiler/profiler.hh"
#include "isa/assembler.hh"
#include "mem/addrmap.hh"

using namespace stitch;
using namespace stitch::bench;
using namespace stitch::isa::reg;

namespace
{

/**
 * A kernel with a ~8 KB working set: a 4 KB "hot" table (the part the
 * paper maps to the SPM) plus 2 KB input and 2 KB output streams that
 * always live in cached DRAM. With an 8 KB D$ everything fits; with a
 * 4 KB D$ the streams fit exactly iff the hot table moved to the SPM.
 */
isa::Program
streamKernel(bool useSpm, int passes)
{
    isa::Assembler a(useSpm ? "spm" : "dram");
    auto hotBase = useSpm ? static_cast<std::int32_t>(mem::spmBase)
                          : 0x38000;
    a.li(s2, hotBase);  // hot[1024] (4 KB)
    // Stream bases staggered so they map to disjoint cache sets
    // (the paper's "appropriate data mapping strategy").
    a.li(s3, 0x30000);  // in[512]   (2 KB, always cached)
    a.li(s4, 0x32800);  // out[512]  (2 KB, always cached)

    auto outer = a.newLabel();
    auto loop = a.newLabel();
    a.li(t9, 0); // pass
    a.bind(outer);
    a.li(t0, 0);
    a.li(a0, 0);
    a.bind(loop);
    a.andi(t1, t0, 1023); // hot index
    a.slli(t1, t1, 2);
    a.add(t2, s2, t1);
    a.lw(t3, t2, 0); // hot table lookup
    a.andi(t1, t0, 511);
    a.slli(t1, t1, 2);
    a.add(t2, s3, t1);
    a.lw(t4, t2, 0); // stream in
    a.mul(t3, t3, t4);
    a.srai(t3, t3, 8);
    a.add(a0, a0, t3);
    a.add(t2, s4, t1);
    a.sw(a0, t2, 0); // stream out
    a.addi(t0, t0, 1);
    a.li(t2, 1024);
    a.blt(t0, t2, loop);
    a.addi(t9, t9, 1);
    a.li(t2, passes);
    a.blt(t9, t2, outer);
    a.halt();
    auto prog = a.finish();
    std::vector<Word> hot, stream;
    for (Word i = 0; i < 1024; ++i)
        hot.push_back(i * 17 + 3);
    for (Word i = 0; i < 512; ++i)
        stream.push_back(i * 5 + 1);
    prog.addDataWords(static_cast<Addr>(hotBase), hot);
    prog.addDataWords(0x30000, stream);
    return prog;
}

Cycles
runWith(const isa::Program &prog, bool spmConfig)
{
    mem::MemParams params;
    if (spmConfig) {
        params.dcache.sizeBytes = 4096;
        params.hasSpm = true;
    } else {
        params.dcache.sizeBytes = 8192; // the baseline footnote
        params.hasSpm = false;
    }
    compiler::ProfileParams pp;
    pp.mem = params;
    return compiler::profileProgram(prog, pp).totalCycles;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Section III-C",
                "4 KB D$ + 4 KB SPM vs 8 KB D$ (software only)");

    TextTable table({"workload", "8KB D$ cycles", "4KB D$ + SPM",
                     "degradation"});
    double worst = 0;
    for (int passes : {2, 4, 8}) {
        auto dram = streamKernel(false, passes);
        auto spm = streamKernel(true, passes);
        Cycles dcyc = runWith(dram, false);
        Cycles scyc = runWith(spm, true);
        double deg = 100.0 * (static_cast<double>(scyc) /
                                  static_cast<double>(dcyc) -
                              1.0);
        worst = std::max(worst, deg);
        table.addRow(
            {strformat("8KB-working-set x%d passes", passes),
             strformat("%llu", static_cast<unsigned long long>(dcyc)),
             strformat("%llu", static_cast<unsigned long long>(scyc)),
             strformat("%+.2f%%", deg)});
    }

    // Also: the real suite kernels under the two configs (their
    // arrays already live in the SPM window, which both configs can
    // reach; this isolates the smaller D-cache).
    for (const auto &name : fig11Kernels()) {
        auto input = kernels::kernelByName(name).build({});
        compiler::ProfileParams small;
        small.mem.dcache.sizeBytes = 4096;
        compiler::ProfileParams big;
        big.mem.dcache.sizeBytes = 8192;
        Cycles s = compiler::profileProgram(input.program, small)
                       .totalCycles;
        Cycles b =
            compiler::profileProgram(input.program, big).totalCycles;
        double deg = 100.0 * (static_cast<double>(s) /
                                  static_cast<double>(b) -
                              1.0);
        worst = std::max(worst, deg);
        table.addRow(
            {name,
             strformat("%llu", static_cast<unsigned long long>(b)),
             strformat("%llu", static_cast<unsigned long long>(s)),
             strformat("%+.2f%%", deg)});
    }
    table.print();

    recordMetric("worst_degradation_pct", worst);
    std::printf(
        "\nPaper claim: only ~1.5%% average degradation when the "
        "4 KB D$ is replaced\nby a 4 KB SPM under an appropriate "
        "data mapping. Worst measured case here:\n%+.2f%%.\n",
        worst);
    return 0;
}

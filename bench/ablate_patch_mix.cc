/**
 * @file
 * A2: patch-mix ablation. The paper chose 8 {AT-MA} + 4 {AT-AS} +
 * 4 {AT-SA} from the chain statistics of Section III-A. This bench
 * re-runs the four applications under alternative mixes.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;
using core::PatchKind;

namespace
{

core::StitchArch
mixArch(int ma, int as, int sa)
{
    core::StitchArch arch{};
    // Interleave kinds round-robin across the mesh so fusion
    // partners stay reachable.
    std::vector<PatchKind> kinds;
    for (int i = 0; i < ma; ++i)
        kinds.push_back(PatchKind::ATMA);
    for (int i = 0; i < as; ++i)
        kinds.push_back(PatchKind::ATAS);
    for (int i = 0; i < sa; ++i)
        kinds.push_back(PatchKind::ATSA);
    // Deterministic interleave: stride through the list.
    for (TileId t = 0; t < numTiles; ++t)
        arch.placement[static_cast<std::size_t>(t)] =
            kinds[static_cast<std::size_t>((t * 7 + t / 4) %
                                           numTiles)];
    return arch;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Ablation A2", "patch-mix sweep (Stitch mode)");

    struct Mix
    {
        const char *name;
        core::StitchArch arch;
    };
    const Mix mixes[] = {
        {"8/4/4 (paper)", core::StitchArch::standard()},
        {"16/0/0 all AT-MA", mixArch(16, 0, 0)},
        {"0/8/8 no multiplier", mixArch(0, 8, 8)},
        {"6/5/5 balanced", mixArch(6, 5, 5)},
        {"12/2/2 MA-heavy", mixArch(12, 2, 2)},
    };

    TextTable table({"mix", "APP1", "APP2", "APP3", "APP4", "avg"});

    // One shared runner (thread-safe kernel cache); each mix is an
    // independent sweep task carrying its arch in a private
    // RunConfig. Rows come back in mix order, so the table and the
    // recorded metrics are byte-identical for any --jobs value.
    apps::AppRunner runner(4, 12);
    runner.setScheduler(bench::schedulerFlag());
    struct MixRow
    {
        std::vector<std::string> cells;
        double avg = 0;
    };
    sim::SweepRunner sweep(bench::jobsFlag());
    auto rows = sweep.map(
        static_cast<int>(std::size(mixes)), [&](int i) {
            const Mix &mix = mixes[static_cast<std::size_t>(i)];
            apps::RunConfig cfg = runner.config();
            cfg.arch = mix.arch;
            MixRow row;
            row.cells = {mix.name};
            double sum = 0;
            for (const auto &app : apps::allApps()) {
                auto base =
                    runner.run(app, apps::AppMode::Baseline, cfg);
                auto full =
                    runner.run(app, apps::AppMode::Stitch, cfg);
                double boost = base.perSampleCycles() /
                               full.perSampleCycles();
                sum += boost;
                row.cells.push_back(strformat("%.2f", boost));
            }
            row.avg = sum / 4;
            row.cells.push_back(strformat("%.2f", row.avg));
            return row;
        });
    for (std::size_t i = 0; i < std::size(mixes); ++i) {
        recordMetric(std::string(mixes[i].name) + "/avg_boost",
                     rows[i].avg);
        table.addRow(rows[i].cells);
    }
    table.print();

    std::printf(
        "\nThe paper's heterogeneous 8/4/4 mix serves the diverse "
        "kernel set: an\nall-{AT-MA} chip loses the shift-chain "
        "kernels, a multiplier-free chip loses\nthe MAC kernels, "
        "and the 8/4/4 split tracks the chain occurrence rates\n"
        "({AT} 95.7%%, {MA} 47.8%%, {AS}/{SA} 21.7%% each).\n");
    return 0;
}

/**
 * @file
 * E7 / paper Table IV + the Section VI-D NoC timing analysis: delay
 * and area of every component, the worst-case fused critical path,
 * the six-hop rule and the 200 MHz clock derivation.
 */

#include "bench/bench_common.hh"
#include "core/snoc.hh"

using namespace stitch;
using namespace stitch::bench;
using core::PatchKind;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Table IV", "component delay and area (40 nm)");

    TextTable table({"component", "delay ns", "area um^2"});
    for (auto kind :
         {PatchKind::ATMA, PatchKind::ATAS, PatchKind::ATSA})
        table.addRow({strformat("patch %s",
                                core::patchKindName(kind)),
                      strformat("%.2f", core::patchDelayNs(kind)),
                      strformat("%.0f", core::patchAreaUm2(kind))});
    table.addRow({"NoC switch",
                  strformat("%.2f", core::rtl::switchDelayNs),
                  strformat("%.0f", core::rtl::switchAreaUm2)});
    table.addRow({"3 hops of wire",
                  strformat("%.2f", 3 * core::rtl::wirePerHopNs),
                  "-"});
    table.print();

    std::printf("\nCritical-path analysis (Section VI-D):\n");
    TextTable cp({"configuration", "path ns", "max MHz",
                  "fits 200 MHz"});
    auto addPath = [&](const std::string &name, double ns) {
        cp.addRow({name, strformat("%.2f", ns),
                   strformat("%.0f", core::pathFrequencyMhz(ns)),
                   core::fitsClock(ns) ? "yes" : "NO"});
    };
    addPath("single {AT-SA} + 2 switches",
            core::singleCriticalPathNs(PatchKind::ATSA));
    addPath("single {AT-MA} + 2 switches",
            core::singleCriticalPathNs(PatchKind::ATMA));
    double worstNs = core::fusedCriticalPathNs(PatchKind::ATMA,
                                               PatchKind::ATAS, 3, 3);
    recordMetric("worst_legal_path_ns", worstNs);
    recordMetric("worst_legal_path_mhz",
                 core::pathFrequencyMhz(worstNs));
    addPath("{AT-MA,AT-AS} fused, 3+3 hops (paper worst case)",
            worstNs);
    addPath("{AT-MA,AT-MA} fused, 4+3 hops (over the limit)",
            core::fusedCriticalPathNs(PatchKind::ATMA,
                                      PatchKind::ATMA, 4, 3));
    cp.print();

    std::printf(
        "\nPaper: the worst legal path — switch -> AT-MA -> switch "
        "-> 3 hops -> AT-AS\n-> 3 hops -> switch — is 4.63 ns, which "
        "sets the 200 MHz clock and the\nat-most-six-hop rule. "
        "Model reproduces 4.63 ns exactly.\n");

    // Exhaustive check: every fusion the router will accept fits.
    int checked = 0;
    for (TileId a = 0; a < numTiles; ++a) {
        for (TileId b = 0; b < numTiles; ++b) {
            if (a == b)
                continue;
            core::SnocConfig snoc;
            auto arch = core::StitchArch::standard();
            auto routed =
                snoc.addFusion(a, arch.kindOf(a), b, arch.kindOf(b));
            if (!routed)
                continue;
            ++checked;
            double ns = core::fusedCriticalPathNs(
                arch.kindOf(a), arch.kindOf(b),
                routed->first.hops(), routed->second.hops());
            if (!core::fitsClock(ns)) {
                std::printf("VIOLATION: %d->%d %.2f ns\n", a, b, ns);
                return 1;
            }
        }
    }
    recordMetric("routable_pairs_checked", checked);
    std::printf(
        "Verified: all %d routable tile pairs meet the clock; pairs "
        "beyond 3 mesh\nhops are rejected by the router.\n",
        checked);
    return 0;
}

/**
 * @file
 * Service-level latency bench: drives a 24-job batch through an
 * in-process svc::JobEngine (telemetry on) and reports the end-to-end
 * and per-stage latency quantiles plus the cache hit rate — the
 * numbers the ROADMAP's stitchd-fleet decision is gated on.
 *
 * The batch mixes the four catalog apps across modes and repeats each
 * spec, so the single-flight and cache paths are exercised alongside
 * real simulations. Metrics land in the bench trajectory
 * (BENCH_stitch.json) as *_p50_ms / *_p99_ms (up is worse), hit_rate
 * (down is worse) and a batch throughput figure (down is worse) —
 * names tools/report_diff already knows how to gate.
 *
 * The batch runs `kRepeats` times on a fresh engine each time and
 * each recorded metric is the best observation across repeats (min
 * for latencies, max for throughput), the same discipline
 * google-benchmark applies to the micro benches: a single wall-clock
 * batch on a loaded host swings well past the report_diff gate (±8%
 * observed on a one-vCPU runner vs the 5% threshold), and the
 * minimum is the repeatable estimator of the code's actual cost. The
 * printed table is the repeat with the best end-to-end median.
 */

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "bench_common.hh"
#include "svc/engine.hh"

using namespace stitch;
using namespace stitch::bench;

namespace
{

svc::JobSpec
jobFor(const std::string &app, apps::AppMode mode, int samples)
{
    svc::JobSpec spec;
    spec.app = app;
    spec.mode = mode;
    spec.samplesShort = 1;
    spec.samplesLong = samples;
    return spec;
}

double
quantileMs(const obs::Json &latency, const char *stage,
           const char *key)
{
    if (!latency.has(stage) || !latency.get(stage).has(key))
        return 0.0;
    return latency.get(stage).get(key).asDouble();
}

} // namespace

/** One full 24-job batch on a fresh engine. */
struct BatchResult
{
    obs::Json report;
    double hitRate = 0.0;
    double throughput = 0.0;
};

BatchResult
runBatch()
{
    svc::EngineOptions options;
    options.jobs = jobsFlag();
    options.telemetry = true;
    svc::JobEngine engine(options);

    // 12 distinct specs, each submitted twice: the second submission
    // of every pair must complete from cache, pinning hit_rate at
    // 0.5 while the quantiles track the simulated half.
    const std::string appNames[] = {"APP1-gesture", "APP2-cnn",
                                    "APP3-svm-enc",
                                    "APP4-transport"};
    const apps::AppMode modes[] = {apps::AppMode::Baseline,
                                   apps::AppMode::Locus,
                                   apps::AppMode::Stitch};
    const auto wallStart = std::chrono::steady_clock::now();
    for (int round = 0; round < 2; ++round)
        for (const auto &app : appNames)
            for (const auto mode : modes)
                engine.submit(jobFor(app, mode, 2));
    engine.run();
    const double wallS =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    BatchResult r;
    r.report = engine.serviceReportJson();
    r.hitRate = engine.cache().stats().hitRate();
    r.throughput =
        wallS > 0 ? static_cast<double>(engine.jobCount()) / wallS
                  : 0.0;
    return r;
}

int
main(int argc, char **argv)
{
    initObs(argc, argv);
    printHeader("svc-latency",
                "24-job engine batch: stage quantiles + cache rate");

    constexpr int kRepeats = 3;
    constexpr std::pair<const char *, const char *> kQuantiles[] = {
        {"e2e", "p50_ms"},      {"e2e", "p99_ms"},
        {"queue", "p99_ms"},    {"simulate", "p50_ms"},
        {"simulate", "p99_ms"},
    };
    BatchResult best;
    double bestMs[std::size(kQuantiles)];
    double bestThroughput = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep)
    {
        BatchResult r = runBatch();
        const obs::Json &lat = r.report.get("latency");
        for (std::size_t q = 0; q < std::size(kQuantiles); ++q)
        {
            const double ms = quantileMs(lat, kQuantiles[q].first,
                                         kQuantiles[q].second);
            if (rep == 0 || ms < bestMs[q])
                bestMs[q] = ms;
        }
        bestThroughput = std::max(bestThroughput, r.throughput);
        if (rep == 0 ||
            quantileMs(lat, "e2e", "p50_ms") <
                quantileMs(best.report.get("latency"), "e2e",
                           "p50_ms"))
            best = std::move(r);
    }

    const obs::Json &latency = best.report.get("latency");

    TextTable table({"stage", "count", "p50ms", "p99ms", "maxms"});
    for (const auto &[stage, hist] : latency.items())
        table.addRow({stage,
                      std::to_string(hist.get("count").asUint()),
                      strformat("%.2f",
                                hist.get("p50_ms").asDouble()),
                      strformat("%.2f",
                                hist.get("p99_ms").asDouble()),
                      strformat("%.2f",
                                hist.get("max_ms").asDouble())});
    table.print();
    std::printf("\ncache hit rate %.2f, %.1f jobs/s end to end "
                "(best of %d)\n",
                best.hitRate, bestThroughput, kRepeats);

    recordMetric("e2e_p50_ms", bestMs[0]);
    recordMetric("e2e_p99_ms", bestMs[1]);
    recordMetric("queue_p99_ms", bestMs[2]);
    recordMetric("simulate_p50_ms", bestMs[3]);
    recordMetric("simulate_p99_ms", bestMs[4]);
    recordMetric("hit_rate", best.hitRate);
    recordMetric("batch_throughput_jobs_s", bestThroughput);
    return 0;
}

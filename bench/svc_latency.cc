/**
 * @file
 * Service-level latency bench: drives a 24-job batch through an
 * in-process svc::JobEngine (telemetry on) and reports the end-to-end
 * and per-stage latency quantiles plus the cache hit rate — the
 * numbers the ROADMAP's stitchd-fleet decision is gated on.
 *
 * The batch mixes the four catalog apps across modes and repeats each
 * spec, so the single-flight and cache paths are exercised alongside
 * real simulations. Metrics land in the bench trajectory
 * (BENCH_stitch.json) as *_p50_ms / *_p99_ms (up is worse), hit_rate
 * (down is worse) and a batch throughput figure (down is worse) —
 * names tools/report_diff already knows how to gate.
 */

#include <chrono>

#include "bench_common.hh"
#include "svc/engine.hh"

using namespace stitch;
using namespace stitch::bench;

namespace
{

svc::JobSpec
jobFor(const std::string &app, apps::AppMode mode, int samples)
{
    svc::JobSpec spec;
    spec.app = app;
    spec.mode = mode;
    spec.samplesShort = 1;
    spec.samplesLong = samples;
    return spec;
}

double
quantileMs(const obs::Json &latency, const char *stage,
           const char *key)
{
    if (!latency.has(stage) || !latency.get(stage).has(key))
        return 0.0;
    return latency.get(stage).get(key).asDouble();
}

} // namespace

int
main(int argc, char **argv)
{
    initObs(argc, argv);
    printHeader("svc-latency",
                "24-job engine batch: stage quantiles + cache rate");

    svc::EngineOptions options;
    options.jobs = jobsFlag();
    options.telemetry = true;
    svc::JobEngine engine(options);

    // 12 distinct specs, each submitted twice: the second submission
    // of every pair must complete from cache, pinning hit_rate at
    // 0.5 while the quantiles track the simulated half.
    const std::string appNames[] = {"APP1-gesture", "APP2-cnn",
                                    "APP3-svm-enc",
                                    "APP4-transport"};
    const apps::AppMode modes[] = {apps::AppMode::Baseline,
                                   apps::AppMode::Locus,
                                   apps::AppMode::Stitch};
    const auto wallStart = std::chrono::steady_clock::now();
    for (int round = 0; round < 2; ++round)
        for (const auto &app : appNames)
            for (const auto mode : modes)
                engine.submit(jobFor(app, mode, 2));
    engine.run();
    const double wallS =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    const obs::Json report = engine.serviceReportJson();
    const obs::Json &latency = report.get("latency");
    const double hitRate = engine.cache().stats().hitRate();
    const double throughput =
        wallS > 0 ? static_cast<double>(engine.jobCount()) / wallS
                  : 0.0;

    TextTable table({"stage", "count", "p50ms", "p99ms", "maxms"});
    for (const auto &[stage, hist] : latency.items())
        table.addRow({stage,
                      std::to_string(hist.get("count").asUint()),
                      strformat("%.2f",
                                hist.get("p50_ms").asDouble()),
                      strformat("%.2f",
                                hist.get("p99_ms").asDouble()),
                      strformat("%.2f",
                                hist.get("max_ms").asDouble())});
    table.print();
    std::printf("\ncache hit rate %.2f, %.1f jobs/s end to end\n",
                hitRate, throughput);

    recordMetric("e2e_p50_ms", quantileMs(latency, "e2e", "p50_ms"));
    recordMetric("e2e_p99_ms", quantileMs(latency, "e2e", "p99_ms"));
    recordMetric("queue_p99_ms",
                 quantileMs(latency, "queue", "p99_ms"));
    recordMetric("simulate_p50_ms",
                 quantileMs(latency, "simulate", "p50_ms"));
    recordMetric("simulate_p99_ms",
                 quantileMs(latency, "simulate", "p99_ms"));
    recordMetric("hit_rate", hitRate);
    recordMetric("batch_throughput_jobs_s", throughput);
    return 0;
}

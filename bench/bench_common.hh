/**
 * @file
 * Shared helpers for the table/figure harnesses: compiled-kernel and
 * application-run caching, and paper-vs-measured formatting.
 *
 * Every harness prints the rows of one paper artifact. Absolute
 * numbers are not expected to match the paper (our substrate is a
 * purpose-built simulator with synthetic kernels, not the authors'
 * gem5+RTL testbed); the *shape* — who wins and by roughly what
 * factor — is the reproduction target. Rows sourced directly from the
 * paper are marked "(paper)".
 */

#ifndef STITCH_BENCH_BENCH_COMMON_HH
#define STITCH_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "apps/app_runner.hh"
#include "common/table.hh"
#include "kernels/catalog.hh"
#include "obs/cli.hh"
#include "power/power_model.hh"
#include "sim/report.hh"

namespace stitch::bench
{

/** Observability switches shared by every bench invocation. */
inline obs::CliOptions &
obsFlags()
{
    static obs::CliOptions flags;
    return flags;
}

/** Write the --report/--stats artifacts describing app run `res`. */
inline void
writeObsArtifacts(const apps::AppRunResult &res)
{
    const auto &flags = obsFlags();
    if (!flags.reportPath.empty()) {
        auto doc = sim::runReport(res.stats);
        if (!res.statsDump.isNull())
            doc.set("stats", res.statsDump);
        obs::writeJsonFile(flags.reportPath, doc);
    }
    if (!flags.statsPath.empty())
        obs::writeJsonFile(flags.statsPath, res.statsDump);
}

/**
 * First call of every bench main(): pick up the observability
 * switches (--trace/--report/--stats/--verbose; other args are
 * ignored) and apply them. inform() is silent unless --verbose, so
 * benches no longer hand-disable status output. The report/stats
 * files describe the last application run the bench performed.
 */
inline void
initObs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        obsFlags().parse(argv[i]);
    obsFlags().begin();
    std::atexit([] { obsFlags().end(); });
}

/** Kernel list of the Fig. 11 study, in display order. */
inline const std::vector<std::string> &
fig11Kernels()
{
    static const std::vector<std::string> kernels = {
        "fft",  "ifft",   "fir",    "filter",    "update", "conv2d",
        "sobel", "pooling", "matmul", "fc",       "dtw",    "aes",
        "histogram", "svm", "astar", "crc",
        "viterbi", "kmeans", "iir"};
    return kernels;
}

/** Compile-once cache of standalone kernels. */
inline const compiler::CompiledKernel &
compiledKernel(const std::string &name)
{
    static std::map<std::string,
                    std::unique_ptr<compiler::CompiledKernel>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        auto input = kernels::kernelByName(name).build({});
        it = cache
                 .emplace(name,
                          std::make_unique<compiler::CompiledKernel>(
                              compiler::compileKernel(name, input)))
                 .first;
    }
    return *it->second;
}

/** Shared application runner (compilations cached across calls). */
inline apps::AppRunner &
appRunner()
{
    static apps::AppRunner runner(4, 12);
    return runner;
}

/** Application run cache keyed by (app, mode). */
inline const apps::AppRunResult &
appResult(const apps::AppSpec &app, apps::AppMode mode)
{
    static std::map<std::string, apps::AppRunResult> cache;
    std::string key =
        app.name + "/" + apps::appModeName(mode);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, appRunner().run(app, mode)).first;
        writeObsArtifacts(it->second);
    }
    return it->second;
}

/** Throughput boost of `mode` over the baseline for `app`. */
inline double
appBoost(const apps::AppSpec &app, apps::AppMode mode)
{
    return appResult(app, apps::AppMode::Baseline).perSampleCycles() /
           appResult(app, mode).perSampleCycles();
}

inline void
printHeader(const char *artifact, const char *caption)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", artifact, caption);
    std::printf("================================================="
                "=============\n");
}

} // namespace stitch::bench

#endif // STITCH_BENCH_BENCH_COMMON_HH

/**
 * @file
 * Shared helpers for the table/figure harnesses: compiled-kernel and
 * application-run caching, and paper-vs-measured formatting.
 *
 * Every harness prints the rows of one paper artifact. Absolute
 * numbers are not expected to match the paper (our substrate is a
 * purpose-built simulator with synthetic kernels, not the authors'
 * gem5+RTL testbed); the *shape* — who wins and by roughly what
 * factor — is the reproduction target. Rows sourced directly from the
 * paper are marked "(paper)".
 */

#ifndef STITCH_BENCH_BENCH_COMMON_HH
#define STITCH_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <string>

#include "apps/app_runner.hh"
#include "common/table.hh"
#include "kernels/catalog.hh"
#include "power/power_model.hh"

namespace stitch::bench
{

/** Kernel list of the Fig. 11 study, in display order. */
inline const std::vector<std::string> &
fig11Kernels()
{
    static const std::vector<std::string> kernels = {
        "fft",  "ifft",   "fir",    "filter",    "update", "conv2d",
        "sobel", "pooling", "matmul", "fc",       "dtw",    "aes",
        "histogram", "svm", "astar", "crc",
        "viterbi", "kmeans", "iir"};
    return kernels;
}

/** Compile-once cache of standalone kernels. */
inline const compiler::CompiledKernel &
compiledKernel(const std::string &name)
{
    static std::map<std::string,
                    std::unique_ptr<compiler::CompiledKernel>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        auto input = kernels::kernelByName(name).build({});
        it = cache
                 .emplace(name,
                          std::make_unique<compiler::CompiledKernel>(
                              compiler::compileKernel(name, input)))
                 .first;
    }
    return *it->second;
}

/** Shared application runner (compilations cached across calls). */
inline apps::AppRunner &
appRunner()
{
    static apps::AppRunner runner(4, 12);
    return runner;
}

/** Application run cache keyed by (app, mode). */
inline const apps::AppRunResult &
appResult(const apps::AppSpec &app, apps::AppMode mode)
{
    static std::map<std::string, apps::AppRunResult> cache;
    std::string key =
        app.name + "/" + apps::appModeName(mode);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, appRunner().run(app, mode)).first;
    return it->second;
}

/** Throughput boost of `mode` over the baseline for `app`. */
inline double
appBoost(const apps::AppSpec &app, apps::AppMode mode)
{
    return appResult(app, apps::AppMode::Baseline).perSampleCycles() /
           appResult(app, mode).perSampleCycles();
}

inline void
printHeader(const char *artifact, const char *caption)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", artifact, caption);
    std::printf("================================================="
                "=============\n");
}

} // namespace stitch::bench

#endif // STITCH_BENCH_BENCH_COMMON_HH

/**
 * @file
 * Shared helpers for the table/figure harnesses: compiled-kernel and
 * application-run caching, and paper-vs-measured formatting.
 *
 * Every harness prints the rows of one paper artifact. Absolute
 * numbers are not expected to match the paper (our substrate is a
 * purpose-built simulator with synthetic kernels, not the authors'
 * gem5+RTL testbed); the *shape* — who wins and by roughly what
 * factor — is the reproduction target. Rows sourced directly from the
 * paper are marked "(paper)".
 */

#ifndef STITCH_BENCH_BENCH_COMMON_HH
#define STITCH_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "apps/app_runner.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/catalog.hh"
#include "obs/cli.hh"
#include "power/power_model.hh"
#include "prof/profile.hh"
#include "prof/speedscope.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"
#include "svc/artifacts.hh"

namespace stitch::bench
{

/** Observability switches shared by every bench invocation. */
inline obs::CliOptions &
obsFlags()
{
    static obs::CliOptions flags;
    return flags;
}

/** Schema of the --json metrics document every bench can emit. */
inline constexpr const char *benchJsonSchema = "stitch-bench";
inline constexpr int benchJsonVersion = 1;

/** This invocation's --json=PATH (empty: no metrics file). */
inline std::string &
benchJsonPath()
{
    static std::string path;
    return path;
}

/** Bench name stamped into the metrics document (argv[0] basename). */
inline std::string &
benchName()
{
    static std::string name = "bench";
    return name;
}

/** Flat name -> value metric map collected over the bench's run. */
inline obs::Json &
benchMetrics()
{
    static obs::Json metrics = obs::Json::object();
    return metrics;
}

/**
 * Record one headline metric of the bench (a boost, a makespan, a
 * mW figure). Metrics land in the --json document that the
 * bench-trajectory harness (tools/trajectory.cc) aggregates and
 * tools/report_diff compares across revisions; without --json the
 * call is a cheap map insert.
 */
inline void
recordMetric(const std::string &name, obs::Json value)
{
    benchMetrics().set(name, std::move(value));
}

/** Write the --json metrics document, if a path was given. */
inline void
writeBenchJson()
{
    if (benchJsonPath().empty())
        return;
    obs::Json doc = obs::Json::object();
    doc.set("schema", benchJsonSchema);
    doc.set("version", benchJsonVersion);
    doc.set("bench", benchName());
    doc.set("metrics", benchMetrics());
    obs::writeJsonFile(benchJsonPath(), doc);
}

/** The shared --json/--jobs/--scheduler/--out flags (common/cli.hh);
 *  initObs() feeds every argv entry through them first. */
inline cli::CommonFlags &
commonFlags()
{
    static cli::CommonFlags flags;
    return flags;
}

/** Consume a --json=PATH argument; true iff it was one. */
inline bool
parseJsonFlag(const char *arg)
{
    return cli::keyedValue(arg, "--json=", &benchJsonPath());
}

/**
 * Worker count for scenario sweeps (--jobs=N, default 1). Benches
 * hand it to sim::SweepRunner, which may force it back to 1 while
 * tracing or profiling is active. --jobs=0 means one worker per
 * hardware thread.
 */
inline int &
jobsFlag()
{
    static int jobs = 1;
    return jobs;
}

/**
 * System scheduler selected on the command line (--scheduler=step|
 * slice; default slice). The step scheduler is the bit-identical
 * reference — the escape hatch for debugging the event-driven path,
 * and one half of the sched_parity_is_exact differential test.
 */
inline sim::SchedulerKind &
schedulerFlag()
{
    static sim::SchedulerKind kind = sim::SchedulerKind::Slice;
    return kind;
}

/** Consume a --scheduler=NAME argument; true iff it was one. */
inline bool
parseSchedulerFlag(const char *arg)
{
    std::string name;
    if (!cli::keyedValue(arg, "--scheduler=", &name))
        return false;
    schedulerFlag() = sim::schedulerKindFromName(name);
    return true;
}

/** Write the --report/--stats artifacts describing app run `res`. */
inline void
writeObsArtifacts(const apps::AppRunResult &res)
{
    const auto &flags = obsFlags();
    bool wantProfile =
        flags.profile || !flags.speedscopePath.empty();
    if (!flags.reportPath.empty()) {
        svc::ReportOptions options;
        options.profile = wantProfile;
        obs::writeJsonFile(flags.reportPath,
                           svc::appReportJson(res, options));
    }
    if (!flags.statsPath.empty())
        obs::writeJsonFile(flags.statsPath, res.statsDump);
    if (!flags.speedscopePath.empty())
        prof::writeSpeedscope(
            flags.speedscopePath,
            prof::buildProfile(
                res.stats, res.stageBindings,
                static_cast<std::uint64_t>(res.samplesLong)));
}

/**
 * First call of every bench main(): pick up the observability
 * switches (--trace/--report/--stats/--profile/--speedscope/
 * --verbose) plus the metrics sink (--json=PATH; other args are
 * ignored) and apply them. inform() is silent unless --verbose, so
 * benches no longer hand-disable status output. The report/stats/
 * profile files describe the last application run the bench
 * performed; the --json document carries every recordMetric() call.
 */
inline void
initObs(int argc, char **argv)
{
    if (argc > 0) {
        std::string path = argv[0];
        auto slash = path.find_last_of('/');
        benchName() = slash == std::string::npos
                          ? path
                          : path.substr(slash + 1);
    }
    for (int i = 1; i < argc; ++i) {
        if (commonFlags().parse(argv[i]))
            continue;
        obsFlags().parse(argv[i]);
    }
    benchJsonPath() = commonFlags().jsonPath;
    jobsFlag() = cli::resolveJobs(commonFlags().jobs);
    if (!commonFlags().scheduler.empty())
        schedulerFlag() =
            sim::schedulerKindFromName(commonFlags().scheduler);
    obsFlags().begin();
    // Touch every static the exit handler reads *before* registering
    // it: function-local statics constructed after std::atexit are
    // destroyed before the handler runs (reverse order), which made
    // writeBenchJson() read a dead metrics map.
    benchJsonPath();
    benchMetrics();
    std::atexit([] {
        obsFlags().end();
        writeBenchJson();
    });
}

/** Kernel list of the Fig. 11 study, in display order. */
inline const std::vector<std::string> &
fig11Kernels()
{
    static const std::vector<std::string> kernels = {
        "fft",  "ifft",   "fir",    "filter",    "update", "conv2d",
        "sobel", "pooling", "matmul", "fc",       "dtw",    "aes",
        "histogram", "svm", "astar", "crc",
        "viterbi", "kmeans", "iir"};
    return kernels;
}

/** Compile-once cache of standalone kernels. */
inline const compiler::CompiledKernel &
compiledKernel(const std::string &name)
{
    static std::map<std::string,
                    std::unique_ptr<compiler::CompiledKernel>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        auto input = kernels::kernelByName(name).build({});
        it = cache
                 .emplace(name,
                          std::make_unique<compiler::CompiledKernel>(
                              compiler::compileKernel(name, input)))
                 .first;
    }
    return *it->second;
}

/** Shared application runner (compilations cached across calls). */
inline apps::AppRunner &
appRunner()
{
    static apps::AppRunner runner(4, 12);
    // The flag may be parsed after the first use constructs the
    // static; re-applying it per access keeps them in sync cheaply.
    runner.setScheduler(schedulerFlag());
    return runner;
}

/** Application run cache keyed by (app, mode). */
inline const apps::AppRunResult &
appResult(const apps::AppSpec &app, apps::AppMode mode)
{
    static std::map<std::string, apps::AppRunResult> cache;
    std::string key =
        app.name + "/" + apps::appModeName(mode);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, appRunner().run(app, mode)).first;
        writeObsArtifacts(it->second);
    }
    return it->second;
}

/** Throughput boost of `mode` over the baseline for `app`. */
inline double
appBoost(const apps::AppSpec &app, apps::AppMode mode)
{
    return appResult(app, apps::AppMode::Baseline).perSampleCycles() /
           appResult(app, mode).perSampleCycles();
}

inline void
printHeader(const char *artifact, const char *caption)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", artifact, caption);
    std::printf("================================================="
                "=============\n");
}

} // namespace stitch::bench

#endif // STITCH_BENCH_BENCH_COMMON_HH

/**
 * @file
 * E8 / paper Figure 14: power-efficiency (performance/watt) and
 * area-efficiency (performance/area) of Stitch relative to the
 * 16-core baseline.
 *
 * Paper: 1.77X avg power efficiency (2.3X speedup at 23% more
 * power), 2.28X avg area efficiency (0.5% more area).
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Figure 14",
                "power- and area-efficiency vs the baseline");

    double chipMm2 = power::chipAreaMm2();
    double baseArea = chipMm2 - power::stitchAccelAreaUm2 / 1e6;
    double powerRatio =
        power::stitchPowerMw() / power::baselinePowerMw();
    double areaRatio = chipMm2 / baseArea;

    TextTable table({"app", "throughput", "perf/watt", "perf/area"});
    double sums[3] = {0, 0, 0};
    for (const auto &app : apps::allApps()) {
        double boost = appBoost(app, apps::AppMode::Stitch);
        double perfWatt = boost / powerRatio;
        double perfArea = boost / areaRatio;
        sums[0] += boost;
        sums[1] += perfWatt;
        sums[2] += perfArea;
        recordMetric(app.name + "/perf_per_watt", perfWatt);
        recordMetric(app.name + "/perf_per_area", perfArea);
        table.addRow({app.name, strformat("%.2f", boost),
                      strformat("%.2f", perfWatt),
                      strformat("%.2f", perfArea)});
    }
    recordMetric("average/throughput_boost", sums[0] / 4);
    recordMetric("average/perf_per_watt", sums[1] / 4);
    recordMetric("average/perf_per_area", sums[2] / 4);
    table.addRow({"average", strformat("%.2f", sums[0] / 4),
                  strformat("%.2f", sums[1] / 4),
                  strformat("%.2f", sums[2] / 4)});
    table.print();

    std::printf(
        "\nModel inputs: Stitch %.1f mW vs baseline %.1f mW "
        "(+%.0f%%); chip %.2f mm^2 vs\n%.2f mm^2 (+%.2f%%).\n",
        power::stitchPowerMw(), power::baselinePowerMw(),
        (powerRatio - 1) * 100, chipMm2, baseArea,
        (areaRatio - 1) * 100);
    std::printf(
        "Paper averages: 1.77X perf/watt, 2.28X perf/area at 2.3X "
        "throughput.\nMeasured: %.2fX / %.2fX at %.2fX — the "
        "efficiency ratios track throughput\nbecause the accelerator "
        "overheads are small, exactly the paper's argument.\n",
        sums[1] / 4, sums[2] / 4, sums[0] / 4);
    return 0;
}

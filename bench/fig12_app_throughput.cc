/**
 * @file
 * E4 / paper Figure 12: application throughput of LOCUS, Stitch
 * without fusion, and Stitch, normalized to the 16-core
 * message-passing baseline.
 *
 * Paper shape: LOCUS 1.14X avg < Stitch w/o fusion 1.53X avg <
 * Stitch 2.3X avg; APP2/APP4 gain more than APP1/APP3 because their
 * per-core workload is more imbalanced.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Figure 12",
                "application throughput vs the 16-core baseline");

    TextTable table({"app", "LOCUS", "Stitch w/o fusion", "Stitch",
                     "(fused kernels)"});
    double sums[3] = {0, 0, 0};
    for (const auto &app : apps::allApps()) {
        double locus = appBoost(app, apps::AppMode::Locus);
        double noFusion =
            appBoost(app, apps::AppMode::StitchNoFusion);
        double full = appBoost(app, apps::AppMode::Stitch);
        sums[0] += locus;
        sums[1] += noFusion;
        sums[2] += full;
        recordMetric(app.name + "/locus_boost", locus);
        recordMetric(app.name + "/no_fusion_boost", noFusion);
        recordMetric(app.name + "/stitch_boost", full);

        const auto &res = appResult(app, apps::AppMode::Stitch);
        int fused = 0;
        for (const auto &p : res.plan.placements)
            fused += p.accel &&
                     p.accel->type ==
                         compiler::AccelTarget::Type::FusedPair;
        table.addRow({app.name, strformat("%.2f", locus),
                      strformat("%.2f", noFusion),
                      strformat("%.2f", full),
                      strformat("%d", fused)});
    }
    recordMetric("average/locus_boost", sums[0] / 4);
    recordMetric("average/no_fusion_boost", sums[1] / 4);
    recordMetric("average/stitch_boost", sums[2] / 4);
    table.addRow({"average", strformat("%.2f", sums[0] / 4),
                  strformat("%.2f", sums[1] / 4),
                  strformat("%.2f", sums[2] / 4), ""});
    table.print();

    std::printf(
        "\nPaper averages: LOCUS 1.14X, Stitch w/o fusion 1.53X, "
        "Stitch 2.3X.\nMeasured: %.2fX / %.2fX / %.2fX — same "
        "ordering; our LOCUS baseline is\nstronger than the paper's "
        "because our integer kernels carry more\nregister-resident "
        "operation chains (see EXPERIMENTS.md).\n",
        sums[0] / 4, sums[1] / 4, sums[2] / 4);
    return 0;
}

/**
 * @file
 * A1: hop-budget ablation. The paper restricts stitched patches to
 * at most six hops (round trip) so the worst fused critical path
 * stays within the 200 MHz clock. This sweep shows the trade-off the
 * designers navigated: more hops = more reachable fusion partners
 * but a slower chip clock.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;
using core::PatchKind;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Ablation A1",
                "fusion hop budget vs clock and reachability");

    TextTable table({"round-trip hops", "worst path ns", "max MHz",
                     "reachable pairs", "mesh distance"});
    // Each hop budget is an independent sweep task (--jobs=N); rows
    // merge in hop order so the table is identical for any N.
    struct HopRow
    {
        int hops = 0;
        double ns = 0;
        int reachable = 0;
        int maxDist = 0;
    };
    sim::SweepRunner sweep(bench::jobsFlag());
    auto rows = sweep.map(6, [&](int i) {
        HopRow row;
        row.hops = 2 + 2 * i;
        // Worst case: two AT-MA patches at the budget's distance.
        row.ns = core::fusedCriticalPathNs(
            PatchKind::ATMA, PatchKind::ATMA, row.hops / 2,
            row.hops - row.hops / 2);
        row.maxDist = row.hops / 2;
        for (TileId a = 0; a < numTiles; ++a)
            for (TileId b = 0; b < numTiles; ++b)
                if (a != b && tileDistance(a, b) <= row.maxDist)
                    ++row.reachable;
        return row;
    });
    for (const HopRow &row : rows) {
        recordMetric(strformat("hops%d/max_mhz", row.hops),
                     core::pathFrequencyMhz(row.ns));
        recordMetric(strformat("hops%d/reachable_pairs", row.hops),
                     row.reachable);
        table.addRow(
            {strformat("%d%s", row.hops,
                       row.hops == core::rtl::maxFusionHops
                           ? " (paper)"
                           : ""),
             strformat("%.2f", row.ns),
             strformat("%.0f", core::pathFrequencyMhz(row.ns)),
             strformat("%d/240", row.reachable),
             strformat("<= %d", row.maxDist)});
    }
    table.print();

    std::printf(
        "\nAt the paper's six-hop budget the worst path is %.2f ns "
        "(the 4.63 ns of\nSection VI-D uses the AT-MA/AT-AS pairing) "
        "— the largest budget that still\nsupports a 200 MHz "
        "single-cycle fused execution. Two more hops would force\n"
        "the whole chip below %.0f MHz for a marginal gain in "
        "reachable partners.\n",
        core::fusedCriticalPathNs(PatchKind::ATMA, PatchKind::ATMA, 3,
                                  3),
        core::pathFrequencyMhz(core::fusedCriticalPathNs(
            PatchKind::ATMA, PatchKind::ATMA, 4, 4)));
    return 0;
}

/**
 * @file
 * E5 / paper Figure 13: power and area breakdown of the Stitch chip.
 * The accelerator rows derive from the paper's synthesis numbers
 * (Table IV areas, 23% accelerator power share of 139.5 mW); the
 * split of the remaining core power is a documented estimate.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Figure 13", "power and area breakdown");

    std::printf("\nPower at 200 MHz (total %.1f mW):\n",
                power::stitchTotalMw);
    TextTable ptab({"component", "mW", "share", "source"});
    for (const auto &row : power::powerBreakdown()) {
        ptab.addRow({row.component, strformat("%.1f", row.value),
                     strformat("%.1f%%", row.share * 100),
                     row.derived ? "derived" : "paper-anchored"});
        recordMetric("power/" + row.component + "_mw", row.value);
    }
    ptab.print();
    recordMetric("power/total_mw", power::stitchTotalMw);

    std::printf("\nAccelerator area (patches + inter-patch NoC):\n");
    TextTable atab({"component", "um^2", "share"});
    double total = 0;
    for (const auto &row : power::accelAreaBreakdown()) {
        atab.addRow({row.component, strformat("%.0f", row.value),
                     strformat("%.1f%%", row.share * 100)});
        recordMetric("area/" + row.component + "_um2", row.value);
        total += row.value;
    }
    recordMetric("area/accel_total_um2", total);
    atab.addRow({"total", strformat("%.0f", total), "100.0%"});
    atab.print();

    std::printf(
        "\nPaper: patches + inter-patch NoC are 23%% of chip power "
        "and only 0.5%% of\nchip area (%.0f um^2 of a ~%.1f mm^2 "
        "chip). Our totals accumulate the paper's\nTable IV "
        "per-component areas to %.0f um^2 (paper: 168,568).\n",
        power::stitchAccelAreaUm2, power::chipAreaMm2(), total);
    return 0;
}

# Test driver: exercise report_diff's exit-status contract. Two
# identical run reports must compare clean (exit 0); a baseline with
# an artificially better makespan must trip the regression gate
# (exit 1). Invoked by report_diff_gates_regressions with
# -DSMOKE_APP=... -DREPORT_DIFF=... -DPYTHON=... -DOUT_DIR=...

set(report "${OUT_DIR}/diff_report.json")

execute_process(
    COMMAND "${SMOKE_APP}" APP1 "--report=${report}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "smoke_app failed with status ${rc}")
endif()

# Identical documents: no regression.
execute_process(
    COMMAND "${REPORT_DIFF}" "${report}" "${report}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "report_diff flagged identical reports (status ${rc})")
endif()

# Shrink the baseline's makespan by 50%: the current report now reads
# as a large cycle regression and must exit 1.
execute_process(
    COMMAND "${PYTHON}" -c "
import json, sys
path = sys.argv[1]
doc = json.load(open(path))
doc['totals']['makespan_cycles'] = \
    int(doc['totals']['makespan_cycles'] * 0.5)
json.dump(doc, open(sys.argv[2], 'w'), indent=2)
" "${report}" "${OUT_DIR}/diff_baseline.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "could not fabricate the baseline report")
endif()

execute_process(
    COMMAND "${REPORT_DIFF}" "${OUT_DIR}/diff_baseline.json"
            "${report}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
            "report_diff missed a 2x makespan regression "
            "(status ${rc}, expected 1)")
endif()

# Test driver: run smoke_app under --profile with an interval and a
# speedscope export, then assert (a) both artifacts are strict JSON,
# (b) the report is version 4 and carries the "profile" attribution
# section plus the interval timeline, and (c) the speedscope document
# declares the official schema. Invoked by prof_artifacts_are_valid
# with -DSMOKE_APP=... -DPYTHON=... -DOUT_DIR=...

set(report "${OUT_DIR}/prof_report.json")
set(speedscope "${OUT_DIR}/prof_speedscope.json")

execute_process(
    COMMAND "${SMOKE_APP}" APP1 "--report=${report}" "--profile=1000"
            "--speedscope=${speedscope}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "smoke_app --profile failed with status ${rc}")
endif()

foreach(artifact IN ITEMS "${report}" "${speedscope}")
    if(NOT EXISTS "${artifact}")
        message(FATAL_ERROR "missing artifact ${artifact}")
    endif()
    execute_process(
        COMMAND "${PYTHON}" -m json.tool "${artifact}"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${artifact} is not valid JSON")
    endif()
endforeach()

file(READ "${report}" report_text)
if(NOT report_text MATCHES "\"version\": 4")
    message(FATAL_ERROR "report is not version 4")
endif()
foreach(key IN ITEMS "\"profile\"" "\"profile_timeline\""
                     "\"total_energy_pj\"" "\"limiting_stage\"")
    if(NOT report_text MATCHES "${key}")
        message(FATAL_ERROR "report lacks the ${key} section")
    endif()
endforeach()

file(READ "${speedscope}" speedscope_text)
if(NOT speedscope_text MATCHES
   "speedscope.app/file-format-schema.json")
    message(FATAL_ERROR "speedscope export lacks the format schema")
endif()
if(NOT speedscope_text MATCHES "\"type\": \"sampled\"")
    message(FATAL_ERROR "speedscope export has no sampled profiles")
endif()

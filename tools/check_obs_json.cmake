# Test driver: run smoke_app with the observability switches and
# assert that both artifacts are valid JSON (python3 -m json.tool).
# Invoked by the obs_artifacts_are_valid_json ctest entry with
# -DSMOKE_APP=... -DPYTHON=... -DOUT_DIR=...

set(report "${OUT_DIR}/smoke_report.json")
set(trace "${OUT_DIR}/smoke_trace.json")

execute_process(
    COMMAND "${SMOKE_APP}" APP1 "--report=${report}" "--trace=${trace}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "smoke_app failed with status ${rc}")
endif()

foreach(artifact IN ITEMS "${report}" "${trace}")
    if(NOT EXISTS "${artifact}")
        message(FATAL_ERROR "missing artifact ${artifact}")
    endif()
    execute_process(
        COMMAND "${PYTHON}" -m json.tool "${artifact}"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${artifact} is not valid JSON")
    endif()
endforeach()

/**
 * @file
 * stitchload — the closed-loop traffic harness for a stitchd daemon
 * or a stitchrouter-fronted fleet.
 *
 * Usage:
 *   stitchload HOST:PORT [--requests=N] [--clients=N] [--seed=S]
 *              [--hot=FRAC] [--hot-set=N] [--burst-every=N]
 *              [--burst-pause-ms=N] [--retries=N]
 *              [--retry-base-ms=X] [--retry-seed=S]
 *              [--timeout-ms=N] [--json=FILE] [--quiet]
 *   stitchload --dump-stream [--requests=N] [--seed=S] ...
 *   stitchload --version
 *
 * Replays a seeded device-fleet mix (fleet/load.hh): a hot set of
 * duplicated jobs, a long tail of uniques, priority bands and
 * optional bursts. The schedule is a pure function of the mix —
 * --dump-stream prints it (keys, priorities, digest) without sending
 * anything, and two runs with the same seed send byte-identical
 * request streams. The run prints a stitch-load-report v1 document
 * (p50/p99 end-to-end latency, jobs/s, fleet cache-hit rate,
 * shed/retry counts, per-shard spread, typed-error tallies) and
 * writes it to --json=FILE for report_diff / CI gating.
 *
 * Exit status is the typed-error contract: 0 when every failure that
 * came back carried an error_kind, 1 when any untyped failure
 * slipped through (the fleet CI gate runs this while SIGKILLing a
 * shard mid-run), 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "fleet/load.hh"
#include "obs/buildinfo.hh"
#include "obs/json.hh"
#include "obs/registry.hh"

using namespace stitch;

int
main(int argc, char **argv)
{
    fleet::LoadMix mix;
    std::string target, jsonPath;
    bool dumpStream = false, quiet = false;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--version") == 0) {
            std::printf("%s\n",
                        obs::versionText("stitchload").c_str());
            return 0;
        }
        if (cli::keyedValue(arg, "--json=", &jsonPath))
            continue;
        if (cli::keyedValue(arg, "--requests=", &value)) {
            mix.requests = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--clients=", &value)) {
            mix.clients = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--seed=", &value)) {
            mix.seed = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--hot=", &value)) {
            mix.hotFraction = std::atof(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--hot-set=", &value)) {
            mix.hotSetSize = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--burst-every=", &value)) {
            mix.burstEvery = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--burst-pause-ms=", &value)) {
            mix.burstPauseMs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--retries=", &value)) {
            mix.retry.maxAttempts = 1 + std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--retry-base-ms=", &value)) {
            mix.retry.baseDelayMs = std::atof(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--retry-seed=", &value)) {
            mix.retry.seed = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--timeout-ms=", &value)) {
            mix.timeoutMs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (std::strcmp(arg, "--dump-stream") == 0) {
            dumpStream = true;
            continue;
        }
        if (std::strcmp(arg, "--quiet") == 0) {
            quiet = true;
            continue;
        }
        if (std::strcmp(arg, "--verbose") == 0) {
            obs::Registry::setVerbosity(Verbosity::Info);
            continue;
        }
        if (arg[0] == '-') {
            std::fprintf(stderr, "stitchload: unknown flag %s\n",
                         arg);
            return 2;
        }
        target = arg;
    }

    try {
        if (dumpStream) {
            const auto schedule = fleet::buildSchedule(mix);
            for (std::size_t i = 0; i < schedule.size(); ++i)
                std::printf("%6zu  %s  prio=%d  %s\n", i,
                            schedule[i].key.c_str(),
                            schedule[i].priority,
                            schedule[i].hot ? "hot" : "tail");
            std::printf("schedule_digest %llu\n",
                        static_cast<unsigned long long>(
                            fleet::scheduleDigest(schedule)));
            return 0;
        }

        const auto colon = target.rfind(':');
        if (target.empty() || colon == std::string::npos) {
            std::fprintf(
                stderr,
                "stitchload: need a HOST:PORT target (or "
                "--dump-stream)\n");
            return 2;
        }
        const std::string host = target.substr(0, colon);
        const int port = std::atoi(target.c_str() + colon + 1);
        if (port < 1 || port > 65535) {
            std::fprintf(stderr, "stitchload: bad port in %s\n",
                         target.c_str());
            return 2;
        }

        const fleet::LoadReport report = fleet::runLoad(
            mix, host, static_cast<std::uint16_t>(port));
        const obs::Json doc = report.toJson();
        if (!quiet)
            std::printf("%s\n", doc.dump(2).c_str());
        if (!jsonPath.empty())
            obs::writeJsonFile(jsonPath, doc);

        if (report.untypedFailures > 0) {
            std::fprintf(
                stderr,
                "stitchload: %llu untyped failure(s) — the typed "
                "error contract is broken\n",
                static_cast<unsigned long long>(
                    report.untypedFailures));
            return 1;
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "stitchload: %s\n", e.what());
        return 2;
    }
}

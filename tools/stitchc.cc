/**
 * @file
 * stitchc — command-line front end to the Stitch compiler.
 *
 * Usage:
 *   stitchc <kernel> [--listing] [--dfg] [--configs]
 *           [--trace=FILE] [--report=FILE] [--stats=FILE] [--verbose]
 *
 *   <kernel>    a catalog kernel name (see `stitchc --list`)
 *   --listing   disassemble the best stitched binary
 *   --dfg       dump the hot-block dataflow graphs
 *   --configs   decode every 19-bit patch configuration the binary
 *               carries (the paper's control words, human readable)
 *
 * The observability switches re-run the best stitched binary on a
 * standalone tile: --trace records its Chrome trace, --report /
 * --stats write that run's JSON report and counter dump.
 *
 * Always prints the measured speedup of every acceleration target.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "compiler/driver.hh"
#include "compiler/liveness.hh"
#include "compiler/profiler.hh"
#include "cpu/patch_handler.hh"
#include "kernels/catalog.hh"
#include "obs/buildinfo.hh"
#include "obs/cli.hh"
#include "sim/report.hh"

using namespace stitch;

int
main(int argc, char **argv)
{
    obs::CliOptions obsOpts;
    bool listing = false, dfg = false, configs = false;
    std::string kernel;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--version")) {
            std::printf("%s\n",
                        obs::versionText("stitchc").c_str());
            return 0;
        }
        if (obsOpts.parse(argv[i]))
            continue;
        if (!std::strcmp(argv[i], "--listing"))
            listing = true;
        else if (!std::strcmp(argv[i], "--dfg"))
            dfg = true;
        else if (!std::strcmp(argv[i], "--configs"))
            configs = true;
        else if (!std::strcmp(argv[i], "--list")) {
            for (const auto &f : kernels::kernelCatalog())
                std::printf("%s\n", f.name.c_str());
            return 0;
        } else {
            kernel = argv[i];
        }
    }
    if (obsOpts.verbose)
        obs::Registry::setVerbosity(Verbosity::Info);
    if (kernel.empty()) {
        std::fprintf(stderr,
                     "usage: stitchc <kernel> [--listing] [--dfg] "
                     "[--configs] [--trace=FILE] [--report=FILE] "
                     "[--stats=FILE] [--verbose] | --list\n");
        return 2;
    }

    auto input = kernels::kernelByName(kernel).build({});
    auto compiled = compiler::compileKernel(kernel, input);

    std::printf("%s: software %llu cycles; %zu hot-chain strings\n\n",
                kernel.c_str(),
                static_cast<unsigned long long>(
                    compiled.softwareCycles),
                compiled.chainStrings.size());
    std::printf("%-16s %10s %8s %6s %6s\n", "target", "cycles",
                "speedup", "CUSTs", "fused");
    for (const auto &v : compiled.variants) {
        std::printf("%-16s %10llu %7.2fx %6d %6d\n",
                    v.target.name().c_str(),
                    static_cast<unsigned long long>(v.cycles),
                    v.speedup, v.binary.custCount,
                    v.binary.fusedCustCount);
    }

    if (dfg) {
        auto profile = compiler::profileProgram(compiled.software);
        auto liveOuts = compiler::blockLiveOuts(compiled.software,
                                                profile.blocks);
        auto spmIns = compiler::blockSpmPointers(
            compiled.software, profile.blocks, input.spmBaseRegs);
        for (auto bi : profile.hotBlocks) {
            const auto &bb = profile.blocks[bi];
            std::printf("\n-- hot block %zu [%zu, %zu) x%llu --\n",
                        bi, bb.begin, bb.end,
                        static_cast<unsigned long long>(
                            bb.execCount));
            std::vector<RegId> spmRegs(spmIns[bi].begin(),
                                       spmIns[bi].end());
            auto graph = compiler::Dfg::build(
                compiled.software, bb, spmRegs, &liveOuts[bi]);
            std::printf("%s", graph.toString().c_str());
        }
    }

    const auto *best = compiled.bestStitch();
    if (listing) {
        std::printf("\n-- best stitched binary (%s) --\n%s",
                    best->target.name().c_str(),
                    best->binary.program.listing().c_str());
    }

    if (configs) {
        std::printf("\n-- decoded ISE configurations (%s) --\n",
                    best->target.name().c_str());
        const auto &table = best->binary.program.iseTable();
        for (std::size_t i = 0; i < table.size(); ++i) {
            auto cfg = core::FusedConfig::unpackBlob(table[i]);
            std::printf("cfg%zu local %s [%s]\n", i,
                        core::patchKindName(cfg.localKind),
                        cfg.local.toString().c_str());
            if (cfg.usesRemote) {
                std::printf("      remote %s [%s]%s\n",
                            core::patchKindName(cfg.remoteKind),
                            cfg.remote.toString().c_str(),
                            cfg.writeLocalToRd1 ? " +rd1=local"
                                                : "");
            }
        }
    }

    if (!obsOpts.tracePath.empty() || !obsOpts.reportPath.empty() ||
        !obsOpts.statsPath.empty()) {
        // Observed re-run of the best stitched binary on a standalone
        // tile (the measurement runs above stay untraced so the trace
        // covers exactly one execution).
        if (!obsOpts.tracePath.empty())
            obs::Tracer::instance().start(obsOpts.tracePath);
        mem::TileMemory memory{mem::MemParams{}};
        cpu::LocalPatchHandler handler(best->target.local, memory);
        cpu::Core core(0, memory, &handler, nullptr);
        obs::Registry registry;
        registry.add("tile0.core", core.stats());
        registry.add("tile0.mem", memory.stats());
        registry.add("tile0.icache", memory.icache().stats());
        registry.add("tile0.dcache", memory.dcache().stats());
        core.loadProgram(best->binary.program);
        core.runToHalt();
        obsOpts.end();

        sim::RunStats stats;
        const StatGroup &cs = core.stats();
        auto &ts = stats.perTile[0];
        ts.loaded = true;
        ts.cycles = core.time();
        ts.instructions = core.instructionsRetired();
        ts.customInstructions = cs.get("custom_instructions");
        ts.imissStallCycles = cs.get("imiss_stall_cycles");
        ts.dmissStallCycles = cs.get("dmiss_stall_cycles");
        stats.makespan = ts.cycles;
        stats.instructions = ts.instructions;
        stats.customInstructions = ts.customInstructions;
        if (!obsOpts.reportPath.empty())
            sim::writeRunReport(obsOpts.reportPath, stats, &registry);
        if (!obsOpts.statsPath.empty())
            obs::writeJsonFile(obsOpts.statsPath,
                               registry.toJson(/*skipZero=*/true));
    }
    return 0;
}

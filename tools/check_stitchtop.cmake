# Test driver: golden-schema check on stitchd's introspection verbs.
# The heavy lifting (starting a live daemon, driving jobs over the
# wire, validating every `stitchtop --once --json` answer and the
# flight-recorder artifact) needs a background process, so it lives
# in check_stitchtop.py; this wrapper keeps the ctest registration
# idiom uniform with the other check_*.cmake drivers. Invoked by
# stitchtop_schema_golden with -DSTITCHD=... -DSTITCHTOP=...
# -DPYTHON=... -DOUT_DIR=...

execute_process(
    COMMAND "${PYTHON}" "${CMAKE_CURRENT_LIST_DIR}/check_stitchtop.py"
            "--stitchd=${STITCHD}" "--stitchtop=${STITCHTOP}"
            "--out=${OUT_DIR}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "check_stitchtop.py failed with status ${rc}")
endif()

/**
 * @file
 * trajectory — merge per-bench --json metric documents into the
 * single bench-trajectory aggregate (BENCH_stitch.json at the repo
 * root). The aggregate is the unit the regression harness tracks
 * across revisions: run `make bench-trajectory`, commit the file, and
 * `report_diff old.json new.json` gates the delta.
 *
 * Usage:
 *   trajectory OUT.json BENCH1.json [BENCH2.json ...]
 *
 * Every input must be a stitch-bench document (bench_common.hh
 * schema); its metrics land under benches.<name>. Inputs that are
 * missing on disk are skipped with a warning (a partial trajectory is
 * still comparable over the benches it has), but malformed documents
 * are fatal.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hh"

using namespace stitch;

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: trajectory OUT.json BENCH1.json "
                     "[BENCH2.json ...]\n");
        return 2;
    }

    obs::Json benches = obs::Json::object();
    int merged = 0;
    for (int i = 2; i < argc; ++i) {
        std::ifstream in(argv[i]);
        if (!in) {
            std::fprintf(stderr,
                         "trajectory: skipping missing '%s'\n",
                         argv[i]);
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();
        obs::Json doc = obs::Json::parse(text.str());
        if (!doc.isObject() || !doc.has("schema") ||
            doc.get("schema").asString() != "stitch-bench") {
            std::fprintf(stderr,
                         "trajectory: '%s' is not a stitch-bench "
                         "document\n",
                         argv[i]);
            return 2;
        }
        benches.set(doc.get("bench").asString(),
                    doc.get("metrics"));
        ++merged;
    }

    obs::Json out = obs::Json::object();
    out.set("schema", "stitch-bench-trajectory");
    out.set("version", 1);
    out.set("benches", benches);
    obs::writeJsonFile(argv[1], out);
    std::printf("trajectory: merged %d bench document%s into %s\n",
                merged, merged == 1 ? "" : "s", argv[1]);
    return merged > 0 ? 0 : 2;
}

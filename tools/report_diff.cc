/**
 * @file
 * report_diff — compare two machine-readable artifacts (run reports,
 * stitch-bench metrics documents, or bench-trajectory aggregates) and
 * print a delta table of every numeric leaf they share.
 *
 * Usage:
 *   report_diff BASELINE.json CURRENT.json [--threshold=PCT]
 *
 * Exit status: 0 when no tracked metric regressed beyond the
 * threshold (default 5%), 1 when at least one did, 2 on usage or
 * parse errors — so CI can gate on a bench-trajectory run with a
 * plain `report_diff old.json new.json`.
 *
 * Regression direction is inferred from the metric name: cycles,
 * stalls, energy, power, time, area, SLO burn rates, violation and
 * error-rate counts grow *worse* upward; boosts, speedups and
 * throughputs grow worse downward. Unrecognized metrics are reported
 * but never gate.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "obs/json.hh"

using namespace stitch;

namespace
{

/** Which direction of change is a regression for this metric. */
enum class Direction
{
    UpIsWorse,   ///< cycles, energy, stalls, latency, area
    DownIsWorse, ///< boosts, speedups, throughput
    Untracked,   ///< informational only; never gates
};

Direction
directionOf(const std::string &name)
{
    auto contains = [&](const char *needle) {
        return name.find(needle) != std::string::npos;
    };
    // "jobs_s" needs an exact leaf match: a substring test would
    // swallow "jobs_submitted" / "jobs_shed", which are counters,
    // not throughputs.
    auto leafIs = [&](const std::string &leaf) {
        if (name == leaf)
            return true;
        const std::string dotted = "." + leaf;
        return name.size() > dotted.size() &&
               name.compare(name.size() - dotted.size(),
                            dotted.size(), dotted) == 0;
    };
    // Order matters: "cycles_per_sample" must match before any
    // throughput-ish token, and "perf_per_watt" is a ratio where
    // bigger is better even though it mentions power. "mips" also
    // covers "mips_compiled" (the translation-cached backend's
    // headline counter); keep the explicit token so the intent
    // survives a future tightening of the substring match.
    // "hit_rate" covers "fleet_hit_rate" (the stitchload headline),
    // and "_p99"/"_ms" cover "load_p99_ms".
    if (contains("boost") || contains("speedup") ||
        contains("perf_per_") || contains("throughput") ||
        contains("items_per") || contains("instr/s") ||
        contains("mips") || contains("mips_compiled") ||
        contains("_mhz") ||
        contains("utilization") || contains("hit_rate") ||
        leafIs("jobs_s"))
        return Direction::DownIsWorse;
    if (contains("cycle") || contains("_pj") || contains("_mw") ||
        contains("_ms") || contains("_ns") || contains("stall") ||
        contains("makespan") || contains("energy") ||
        contains("_um2") || contains("degradation") ||
        contains("failures") || contains("slack") ||
        contains("_p50") || contains("_p90") || contains("_p99") ||
        contains("burn_rate") || contains("burn_short") ||
        contains("burn_long") || contains("violations") ||
        contains("error_rate") || contains("failover") ||
        contains("reroute") || contains("remote_cache_errors") ||
        contains("unavailable") || contains("untyped"))
        return Direction::UpIsWorse;
    return Direction::Untracked;
}

/** Flatten every numeric leaf of `doc` into "a.b.c" -> value. */
void
flatten(const obs::Json &doc, const std::string &prefix,
        std::vector<std::pair<std::string, double>> *out)
{
    switch (doc.kind()) {
      case obs::Json::Kind::Int:
      case obs::Json::Kind::Double:
        out->emplace_back(prefix, doc.asDouble());
        break;
      case obs::Json::Kind::Object:
        for (const auto &[key, value] : doc.items())
            flatten(value, prefix.empty() ? key : prefix + "." + key,
                    out);
        break;
      case obs::Json::Kind::Array:
        for (std::size_t i = 0; i < doc.size(); ++i)
            flatten(doc.at(i), prefix + "[" + std::to_string(i) + "]",
                    out);
        break;
      default:
        break; // strings/bools/null carry no comparable number
    }
}

bool
loadFlat(const char *path,
         std::vector<std::pair<std::string, double>> *out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "report_diff: cannot open '%s'\n", path);
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    flatten(obs::Json::parse(text.str()), "", out);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    double thresholdPct = 5.0;
    std::vector<const char *> files;
    for (int i = 1; i < argc; ++i) {
        constexpr const char *prefix = "--threshold=";
        if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0)
            thresholdPct = std::atof(argv[i] + std::strlen(prefix));
        else
            files.push_back(argv[i]);
    }
    if (files.size() != 2) {
        std::fprintf(stderr,
                     "usage: report_diff BASELINE.json CURRENT.json "
                     "[--threshold=PCT]\n");
        return 2;
    }

    std::vector<std::pair<std::string, double>> base, cur;
    if (!loadFlat(files[0], &base) || !loadFlat(files[1], &cur))
        return 2;

    TextTable table({"metric", "baseline", "current", "delta",
                     "verdict"});
    int regressions = 0, compared = 0;
    for (const auto &[name, baseVal] : base) {
        auto it = std::find_if(cur.begin(), cur.end(),
                               [&](const auto &kv) {
                                   return kv.first == name;
                               });
        if (it == cur.end())
            continue;
        double curVal = it->second;
        ++compared;
        double deltaPct =
            baseVal == 0.0
                ? (curVal == 0.0 ? 0.0 : 100.0)
                : (curVal - baseVal) / std::fabs(baseVal) * 100.0;
        if (std::fabs(deltaPct) < 1e-9)
            continue; // unchanged rows only pad the table

        Direction dir = directionOf(name);
        bool regressed =
            (dir == Direction::UpIsWorse &&
             deltaPct > thresholdPct) ||
            (dir == Direction::DownIsWorse &&
             deltaPct < -thresholdPct);
        regressions += regressed;
        const char *verdict =
            regressed ? "REGRESSION"
                      : dir == Direction::Untracked ? "(untracked)"
                                                    : "ok";
        table.addRow({name, strformat("%.4g", baseVal),
                      strformat("%.4g", curVal),
                      strformat("%+.2f%%", deltaPct), verdict});
    }
    table.print();

    std::printf("\n%d metrics compared, %d regression%s beyond "
                "%.1f%%.\n",
                compared, regressions, regressions == 1 ? "" : "s",
                thresholdPct);
    return regressions ? 1 : 0;
}

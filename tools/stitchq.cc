/**
 * @file
 * stitchq — batch front-end of the simulation job engine.
 *
 * Usage:
 *   stitchq BATCH.jsonl [--jobs=N] [--cache=DIR] [--out=DIR]
 *           [--summary=FILE] [--svc-trace=FILE] [--svc-events=FILE]
 *           [--metrics-out=FILE] [--max-queue=N] [--verbose]
 *
 * BATCH.jsonl holds one stitch-job document per line (blank lines and
 * `#` comment lines skipped). Every job is validated eagerly, queued
 * by priority, and drained by N workers against the content-addressed
 * result cache (--cache enables the on-disk layer, so re-running the
 * same batch performs zero simulations).
 *
 * --max-queue bounds the pending queue; lines that the engine refuses
 * to admit (or sheds to admit a higher-priority line) show up as
 * "rejected"/"shed" rows with error_kind "overloaded" rather than
 * killing the batch.
 *
 * --out writes each job's run report to DIR/jobNNN.json — the same
 * builder and writer smoke_app uses, so a batch report is
 * byte-identical to a serial `smoke_app <app> --report=...` of the
 * same spec, for any --jobs value. --summary writes a machine-
 * readable batch summary including the engine's service counters.
 * Exit status is 1 when any job was rejected or failed.
 *
 * --svc-trace / --svc-events turn on request-scoped telemetry and
 * export the batch's service spans as a Chrome trace (one lane per
 * job: queue/claim/cache_probe/compile/stitch/simulate/report slices
 * under a job envelope) and a JSONL event log. Telemetry never
 * changes the job reports themselves — with the flags absent the
 * output is byte-identical.
 *
 * --metrics-out writes the drained engine's Prometheus text
 * exposition (the same lines a stitchd {"cmd":"scrape"} answers, see
 * DESIGN.md §14) to FILE — one end-of-batch scrape for pipelines
 * that ingest batch runs into the same dashboards as the daemon.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "fault/fault.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/buildinfo.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "svc/engine.hh"

using namespace stitch;

namespace
{

struct BatchRow
{
    int line = 0;     ///< 1-based line in the batch file
    int jobId = -1;   ///< engine id; -1 when rejected at parse time
    std::string name; ///< spec label (or "line N")
    std::string error;
    std::string errorKind; ///< typed rejection ("config"/"overloaded")
};

std::string
readFileOrDie(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw fault::ConfigError(detail::formatMessage(
            "cannot open batch file ", path, ": ",
            std::strerror(errno)));
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string batchPath, cacheDir, summaryPath;
    std::string svcTracePath, svcEventsPath, metricsOutPath;
    int maxQueue = 0;
    cli::CommonFlags common;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--version") == 0) {
            std::printf("%s\n",
                        obs::versionText("stitchq").c_str());
            return 0;
        }
        if (common.parse(arg) ||
            cli::keyedValue(arg, "--cache=", &cacheDir) ||
            cli::keyedValue(arg, "--summary=", &summaryPath) ||
            cli::keyedValue(arg, "--svc-trace=", &svcTracePath) ||
            cli::keyedValue(arg, "--svc-events=", &svcEventsPath) ||
            cli::keyedValue(arg, "--metrics-out=", &metricsOutPath))
            continue;
        if (cli::keyedValue(arg, "--max-queue=", &value)) {
            maxQueue = std::atoi(value.c_str());
            continue;
        }
        if (std::strcmp(arg, "--verbose") == 0) {
            obs::Registry::setVerbosity(Verbosity::Info);
            continue;
        }
        if (arg[0] == '-') {
            std::fprintf(stderr, "stitchq: unknown flag %s\n", arg);
            return 2;
        }
        batchPath = arg;
    }
    if (batchPath.empty()) {
        std::fprintf(
            stderr,
            "usage: stitchq BATCH.jsonl [--jobs=N] [--cache=DIR] "
            "[--out=DIR] [--summary=FILE] [--svc-trace=FILE] "
            "[--svc-events=FILE] [--metrics-out=FILE] "
            "[--max-queue=N]\n");
        return 2;
    }

    svc::EngineOptions options;
    options.jobs = cli::resolveJobs(common.jobs);
    options.cacheDir = cacheDir;
    options.maxQueueDepth = maxQueue;
    options.telemetry =
        !svcTracePath.empty() || !svcEventsPath.empty();
    svc::JobEngine engine(options);

    std::vector<BatchRow> rows;
    try {
        const std::string text = readFileOrDie(batchPath);
        std::size_t pos = 0;
        int lineNo = 0;
        while (pos < text.size()) {
            std::size_t eol = text.find('\n', pos);
            if (eol == std::string::npos)
                eol = text.size();
            std::string line = text.substr(pos, eol - pos);
            pos = eol + 1;
            ++lineNo;
            const auto first = line.find_first_not_of(" \t\r");
            if (first == std::string::npos || line[first] == '#')
                continue;

            BatchRow row;
            row.line = lineNo;
            row.name = "line " + std::to_string(lineNo);
            try {
                svc::JobSpec spec =
                    svc::JobSpec::fromJson(obs::Json::parse(line));
                if (!spec.name.empty())
                    row.name = spec.name;
                row.jobId = engine.submit(spec);
            } catch (const svc::OverloadedError &e) {
                // admission control said no: a typed, expected
                // outcome under --max-queue, not a batch error.
                row.error = e.what();
                row.errorKind = "overloaded";
            } catch (const FatalError &e) {
                // parse/validation failure: report it, keep going —
                // a mixed batch must not die on one bad line.
                row.error = e.what();
                row.errorKind = "config";
            }
            rows.push_back(std::move(row));
        }
    } catch (const fault::ConfigError &e) {
        std::fprintf(stderr, "stitchq: %s\n", e.what());
        return 2;
    }

    engine.run();

    TextTable table({"#", "job", "app", "mode", "status", "cached",
                     "per-sample", "latency"});
    bool anyFailed = false;
    obs::Json summaryJobs = obs::Json::array();
    int outIndex = 0;
    for (const auto &row : rows) {
        obs::Json entry = obs::Json::object();
        entry.set("line", row.line);
        entry.set("name", row.name);
        if (row.jobId < 0) {
            anyFailed = true;
            entry.set("status", "rejected");
            entry.set("error_kind", row.errorKind);
            entry.set("error", row.error);
            table.addRow({std::to_string(row.line), row.name, "-",
                          "-", "rejected", "-", "-", "-"});
            summaryJobs.push(std::move(entry));
            ++outIndex;
            continue;
        }
        const svc::JobSpec &spec = engine.spec(row.jobId);
        const svc::JobResult &result = engine.result(row.jobId);
        entry.set("key", result.key);
        entry.set("app", spec.app);
        entry.set("mode", svc::appModeToken(spec.mode));
        entry.set("status", svc::jobStatusName(result.status));
        entry.set("cached", result.cached);

        std::string perSample = "-", latency = "-";
        if (result.status == svc::JobResult::Status::Completed) {
            perSample = strformat(
                "%.0f",
                result.derived.get("per_sample_cycles").asDouble());
            latency = strformat("%.1fms", result.latencyMs);
            if (!common.out.empty()) {
                const std::string path =
                    common.out + "/" +
                    strformat("job%03d.json", outIndex);
                obs::writeJsonFile(path, result.report);
                entry.set("report", path);
            }
        } else {
            anyFailed = true;
            entry.set("error_kind", result.errorKind);
            entry.set("error", result.error);
        }
        table.addRow({std::to_string(row.line), row.name, spec.app,
                      svc::appModeToken(spec.mode),
                      svc::jobStatusName(result.status),
                      result.cached ? "yes" : "no", perSample,
                      latency});
        summaryJobs.push(std::move(entry));
        ++outIndex;
    }

    table.print();
    obs::Json service = engine.serviceReportJson();
    const obs::Json &jobCounters =
        service.get("counters").get("svc").get("jobs");
    std::printf(
        "\n%llu submitted, %llu completed (%llu simulated, %llu "
        "cached), %llu failed\n",
        static_cast<unsigned long long>(
            jobCounters.get("submitted").asUint()),
        static_cast<unsigned long long>(
            jobCounters.get("completed").asUint()),
        static_cast<unsigned long long>(
            jobCounters.get("simulated").asUint()),
        static_cast<unsigned long long>(
            jobCounters.get("cache_hits").asUint()),
        static_cast<unsigned long long>(
            jobCounters.get("failed").asUint()));

    try {
        if (!svcTracePath.empty())
            engine.spanSink().writeChromeTrace(svcTracePath);
        if (!svcEventsPath.empty())
            engine.spanSink().writeJsonl(svcEventsPath);
        if (!metricsOutPath.empty()) {
            const std::string text = engine.expositionText();
            std::FILE *f = obs::openArtifactFile(metricsOutPath);
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "stitchq: %s\n", e.what());
        return 2;
    }

    if (!summaryPath.empty()) {
        obs::Json doc = obs::Json::object();
        doc.set("schema", "stitch-batch-summary");
        doc.set("version", 1);
        doc.set("batch", batchPath);
        doc.set("jobs", std::move(summaryJobs));
        doc.set("service", std::move(service));
        obs::writeJsonFile(summaryPath, doc);
    }

    return anyFailed ? 1 : 0;
}

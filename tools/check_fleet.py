#!/usr/bin/env python3
"""Acceptance gate on the stitchd fleet (DESIGN.md §16).

Brings up a real three-shard fleet — each stitchd peered with the
other two through the shared cache tier — behind a stitchrouter,
then drives the seeded stitchload mix through it three times:

  phase 1  healthy fleet: every request must answer ok, zero
           untyped failures, the load spread across all shards, and
           the schedule digest must match a --dump-stream replay
           (the determinism contract).
  phase 2  chaos: the busiest shard is SIGKILLed *while the replay
           runs*. The typed-error contract must hold — zero untyped
           failures, zero client-visible transport failures — and
           the router must report the failover (shard failures > 0,
           one shard unhealthy).
  phase 3  aftermath: the same seed replays against the survivors;
           phase-1 results simulated on the dead shard must be
           fleet-wide cache hits via the shared tier (hit rate
           >= 0.9).

A stitchtop --cmd=statz probe against the router validates the
fleet-aggregation schema along the way, and a final SIGTERM must
shut the router down gracefully with a valid --report artifact.

Invoked by the fleet_failover_survives ctest entry via
check_fleet.cmake; exits non-zero with a message on the first
violation.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time


def fail(message):
    print("check_fleet: " + message, file=sys.stderr)
    sys.exit(1)


def free_ports(n):
    """n distinct free localhost ports (bound then released)."""
    socks = []
    for _ in range(n):
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        socks.append(s)
    ports = [s.getsockname()[1] for s in socks]
    for s in socks:
        s.close()
    return ports


def wait_port_file(path, proc, name, log_file, deadline_s=20):
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        if proc.poll() is not None:
            fail("%s exited early (%d); see %s"
                 % (name, proc.returncode, log_file))
        if os.path.exists(path):
            text = open(path).read().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    fail("%s never wrote %s" % (name, path))


def run_load(stitchload, port, json_path, seed, requests):
    proc = subprocess.run(
        [stitchload, "127.0.0.1:%d" % port,
         "--requests=%d" % requests, "--clients=4",
         "--seed=%d" % seed, "--json=" + json_path, "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        timeout=180)
    if proc.returncode != 0:
        fail("stitchload exited %d: %s"
             % (proc.returncode, proc.stdout.decode()[-500:]))
    return json.load(open(json_path))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--stitchd", required=True)
    ap.add_argument("--stitchrouter", required=True)
    ap.add_argument("--stitchload", required=True)
    ap.add_argument("--stitchtop", required=True)
    ap.add_argument("--out", required=True)
    args = ap.parse_args()

    out = args.out
    os.makedirs(out, exist_ok=True)
    seed, requests = 7, 60
    router_report = os.path.join(out, "fleet_router_report.json")
    if os.path.exists(router_report):
        os.remove(router_report)

    shard_ports = free_ports(3)
    shards = []
    logs = []
    router = None
    try:
        # Each shard is told its two peers up front — the remote
        # cache tier is what makes phase 3's hits fleet-wide.
        for i, port in enumerate(shard_ports):
            peers = ",".join("127.0.0.1:%d" % p
                             for p in shard_ports if p != port)
            port_file = os.path.join(out, "fleet_shard%d_port" % i)
            if os.path.exists(port_file):
                os.remove(port_file)
            log_path = os.path.join(out, "fleet_shard%d.log" % i)
            log = open(log_path, "w")
            logs.append(log)
            proc = subprocess.Popen(
                [args.stitchd, "--port=%d" % port,
                 "--port-file=" + port_file, "--peers=" + peers],
                stdout=log, stderr=subprocess.STDOUT)
            shards.append(proc)
            wait_port_file(port_file, proc, "shard %d" % i, log_path)

        router_port_file = os.path.join(out, "fleet_router_port")
        if os.path.exists(router_port_file):
            os.remove(router_port_file)
        router_log_path = os.path.join(out, "fleet_router.log")
        router_log = open(router_log_path, "w")
        logs.append(router_log)
        router = subprocess.Popen(
            [args.stitchrouter,
             "--shards=" + ",".join("127.0.0.1:%d" % p
                                    for p in shard_ports),
             "--port=0", "--port-file=" + router_port_file,
             "--report=" + router_report],
            stdout=router_log, stderr=subprocess.STDOUT)
        router_port = wait_port_file(router_port_file, router,
                                     "stitchrouter",
                                     router_log_path)

        # The replay must be a pure function of the seed: two
        # --dump-stream runs agree with each other (and phase 1's
        # report echoes the same digest below).
        def dump_digest():
            proc = subprocess.run(
                [args.stitchload, "--dump-stream",
                 "--requests=%d" % requests, "--seed=%d" % seed],
                stdout=subprocess.PIPE, timeout=60)
            if proc.returncode != 0:
                fail("--dump-stream exited %d" % proc.returncode)
            for line in proc.stdout.decode().splitlines():
                if line.startswith("schedule_digest"):
                    return line.split()[-1]
            fail("--dump-stream printed no digest")
        digest = dump_digest()
        if digest != dump_digest():
            fail("--dump-stream digest is not deterministic")

        # Phase 1: healthy fleet.
        p1 = run_load(args.stitchload, router_port,
                      os.path.join(out, "fleet_phase1.json"),
                      seed, requests)
        if p1["schema"] != "stitch-load-report":
            fail("phase 1 report schema: %r" % p1["schema"])
        if p1["ok"] != requests or p1["untyped_failures"] != 0:
            fail("phase 1: %d ok, %d untyped (want %d/0)"
                 % (p1["ok"], p1["untyped_failures"], requests))
        if str(p1["schedule_digest"]) != digest:
            fail("phase 1 digest %s != --dump-stream %s"
                 % (p1["schedule_digest"], digest))
        if len(p1["shards"]) != 3:
            fail("phase 1 used %d shards, want 3"
                 % len(p1["shards"]))

        # Fleet aggregation schema via stitchtop against the router.
        probe = subprocess.run(
            [args.stitchtop, "127.0.0.1:%d" % router_port,
             "--once", "--json", "--cmd=statz"],
            stdout=subprocess.PIPE, timeout=30)
        if probe.returncode != 0:
            fail("stitchtop statz probe exited %d"
                 % probe.returncode)
        statz = json.loads(probe.stdout)
        if statz.get("schema") != "stitchrouter-statz":
            fail("router statz schema: %r" % statz.get("schema"))
        if statz["fleet"]["healthy_shards"] != 3:
            fail("healthy_shards %d before chaos, want 3"
                 % statz["fleet"]["healthy_shards"])
        if statz["fleet"]["jobs_completed"] < requests:
            fail("fleet jobs_completed %d < %d"
                 % (statz["fleet"]["jobs_completed"], requests))
        # The rendered fleet table must work against the same door.
        table = subprocess.run(
            [args.stitchtop, "127.0.0.1:%d" % router_port,
             "--once", "--fleet"],
            stdout=subprocess.PIPE, timeout=30)
        if table.returncode != 0 or b"shard" not in table.stdout:
            fail("stitchtop --fleet rendering failed: %r"
                 % table.stdout[:200])

        # Phase 2: SIGKILL the busiest shard mid-replay.
        busiest = max(p1["shards"], key=lambda s: p1["shards"][s])
        victim = shard_ports.index(int(busiest.split(":")[1]))
        phase2_json = os.path.join(out, "fleet_phase2.json")
        loader = subprocess.Popen(
            [args.stitchload, "127.0.0.1:%d" % router_port,
             "--requests=%d" % requests, "--clients=4",
             "--seed=%d" % seed, "--json=" + phase2_json,
             "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        time.sleep(0.3)
        shards[victim].send_signal(signal.SIGKILL)
        shards[victim].wait()
        loader_out, _ = loader.communicate(timeout=180)
        if loader.returncode != 0:
            fail("phase 2 stitchload exited %d: %s"
                 % (loader.returncode,
                    loader_out.decode()[-500:]))
        p2 = json.load(open(phase2_json))
        if p2["untyped_failures"] != 0:
            fail("phase 2: %d untyped failures with a shard "
                 "SIGKILLed mid-run" % p2["untyped_failures"])
        if p2["transport_failures"] != 0:
            fail("phase 2: %d client transport failures"
                 % p2["transport_failures"])
        if p2["ok"] != requests:
            fail("phase 2: only %d/%d ok" % (p2["ok"], requests))

        # Phase 3: the survivors must serve the dead shard's results
        # from the shared cache tier.
        p3 = run_load(args.stitchload, router_port,
                      os.path.join(out, "fleet_phase3.json"),
                      seed, requests)
        if p3["ok"] != requests or p3["untyped_failures"] != 0:
            fail("phase 3: %d ok, %d untyped"
                 % (p3["ok"], p3["untyped_failures"]))
        if p3["fleet_hit_rate"] < 0.9:
            fail("phase 3 fleet_hit_rate %.2f < 0.9 — the shared "
                 "cache tier did not survive the failover"
                 % p3["fleet_hit_rate"])
        if len(p3["shards"]) != 2:
            fail("phase 3 used %d shards, want the 2 survivors"
                 % len(p3["shards"]))

        # The router noticed: failover counters and one dead shard.
        statz = json.loads(subprocess.run(
            [args.stitchtop, "127.0.0.1:%d" % router_port,
             "--once", "--json", "--cmd=statz"],
            stdout=subprocess.PIPE, timeout=30).stdout)
        if statz["router"]["shard_failures"] < 1:
            fail("router saw no shard failures after the SIGKILL")
        if statz["fleet"]["healthy_shards"] != 2:
            fail("healthy_shards %d after chaos, want 2"
                 % statz["fleet"]["healthy_shards"])

        # Graceful shutdown: SIGTERM drains and writes --report.
        router.send_signal(signal.SIGTERM)
        if router.wait(timeout=30) != 0:
            fail("router exited %d on SIGTERM"
                 % router.returncode)
        report = json.load(open(router_report))
        if report.get("schema") != "stitchrouter-statz":
            fail("router --report schema: %r"
                 % report.get("schema"))
        router = None

        print("check_fleet: ok — %d ok/phase, failover typed, "
              "phase-3 hit rate %.2f" % (requests,
                                         p3["fleet_hit_rate"]))
    finally:
        for proc in [router] + shards:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        for log in logs:
            log.close()


if __name__ == "__main__":
    main()

/**
 * @file
 * stitchrouter — the consistent-hash front door of a stitchd fleet.
 *
 * Usage:
 *   stitchrouter --shards=HOST:PORT,HOST:PORT,... [--port=P]
 *                [--port-file=FILE] [--vnodes=N] [--retries=N]
 *                [--retry-base-ms=X] [--retry-seed=S]
 *                [--shard-timeout-ms=N] [--holdoff-ms=N]
 *                [--max-requests=N] [--report=FILE]
 *                [--frame-limit=BYTES] [--read-timeout-ms=N]
 *                [--verbose]
 *   stitchrouter --version
 *
 * Speaks exactly stitchd's wire protocol on both sides, so every
 * existing client (stitchd --send, stitchq, stitchtop, stitchload)
 * points at the router unchanged. Jobs route by their canonical
 * cacheKey over a consistent-hash ring (--vnodes points per shard):
 * duplicates of a job always land on the same shard and dedup in its
 * cache. A shard that fails at the transport level is marked dead,
 * the job fails over along the ring's preference list (total
 * attempts bounded by 1 + --retries, with deterministic jittered
 * backoff), and the dead shard is re-probed after --holdoff-ms.
 * Clients see a typed "unavailable" error only when every attempt is
 * exhausted — never an untyped failure.
 *
 * Introspection is fleet-wide: {"cmd":"healthz"} probes every shard,
 * {"cmd":"statz"} merges the shards' lossless telemetry snapshots
 * (histogram buckets add, windows align by seq) so fleet p50/p99 are
 * real merged quantiles, and {"cmd":"scrape"} renders one Prometheus
 * exposition for the whole fleet. stitchtop --fleet renders the
 * statz form as a live dashboard.
 *
 * Shutdown mirrors stitchd: SIGINT/SIGTERM closes the listener, the
 * in-flight request drains, and a final stitchrouter-statz document
 * is printed (and written to --report=FILE when given).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "fleet/router.hh"
#include "obs/buildinfo.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "svc/server.hh"

using namespace stitch;

namespace
{

svc::Server *gServer = nullptr;

void
onShutdownSignal(int)
{
    if (gServer)
        gServer->stop();
}

} // namespace

int
main(int argc, char **argv)
{
    fleet::RouterOptions options;
    svc::ServerOptions serverOptions;
    std::string shardsCsv, portFile, reportPath;
    int port = 0, maxRequests = 0;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--version") == 0) {
            std::printf("%s\n",
                        obs::versionText("stitchrouter").c_str());
            return 0;
        }
        if (cli::keyedValue(arg, "--shards=", &shardsCsv) ||
            cli::keyedValue(arg, "--port-file=", &portFile) ||
            cli::keyedValue(arg, "--report=", &reportPath))
            continue;
        if (cli::keyedValue(arg, "--port=", &value)) {
            port = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--vnodes=", &value)) {
            options.vnodes = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--retries=", &value)) {
            options.retry.maxAttempts = 1 + std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--retry-base-ms=", &value)) {
            options.retry.baseDelayMs = std::atof(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--retry-seed=", &value)) {
            options.retry.seed = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--shard-timeout-ms=", &value)) {
            options.shardTimeoutMs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--holdoff-ms=", &value)) {
            options.holdoffMs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--max-requests=", &value)) {
            maxRequests = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--frame-limit=", &value)) {
            serverOptions.maxFrameBytes = static_cast<std::uint32_t>(
                std::strtoul(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--read-timeout-ms=", &value)) {
            serverOptions.readTimeoutMs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (std::strcmp(arg, "--verbose") == 0) {
            obs::Registry::setVerbosity(Verbosity::Info);
            continue;
        }
        std::fprintf(stderr, "stitchrouter: unknown flag %s\n", arg);
        return 2;
    }

    try {
        // Comma-split here; the Router validates each endpoint.
        std::size_t start = 0;
        while (start <= shardsCsv.size()) {
            std::size_t end = shardsCsv.find(',', start);
            if (end == std::string::npos)
                end = shardsCsv.size();
            if (end > start)
                options.shards.push_back(
                    shardsCsv.substr(start, end - start));
            start = end + 1;
        }

        fleet::Router router(options);
        svc::Server server(
            [&router](const obs::Json &request) {
                return router.handle(request);
            },
            static_cast<std::uint16_t>(port), serverOptions);

        gServer = &server;
        struct sigaction sa{};
        sa.sa_handler = onShutdownSignal;
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);

        std::printf(
            "stitchrouter: listening on 127.0.0.1:%u, fronting %zu "
            "shard(s)\n",
            static_cast<unsigned>(server.port()),
            router.ring().size());
        std::fflush(stdout);
        if (!portFile.empty()) {
            std::FILE *f = obs::openArtifactFile(portFile);
            std::fprintf(f, "%u\n",
                         static_cast<unsigned>(server.port()));
            std::fclose(f);
        }

        server.serve(maxRequests);
        gServer = nullptr;

        obs::Json report = router.statzJson();
        const fleet::RouterStats stats = router.stats();
        std::printf(
            "stitchrouter: routed %llu job(s), %llu failover "
            "reroute(s), %llu unavailable; final statz follows\n%s\n",
            static_cast<unsigned long long>(stats.jobsRouted),
            static_cast<unsigned long long>(stats.failoverReroutes),
            static_cast<unsigned long long>(stats.unavailable),
            report.dump(2).c_str());
        if (!reportPath.empty())
            obs::writeJsonFile(reportPath, report);
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "stitchrouter: %s\n", e.what());
        return 2;
    }
}

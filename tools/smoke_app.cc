/**
 * @file
 * smoke_app — run every (or one matching) application under all four
 * architecture modes and print per-sample cycles and boosts.
 *
 * Usage:
 *   smoke_app [name-filter] [--scheduler=step|slice] [--trace=FILE]
 *             [--report=FILE] [--stats=FILE] [--profile[=N]]
 *             [--speedscope=FILE] [--verbose]
 *
 * --trace records the whole invocation; --report, --stats, --profile
 * and --speedscope describe the last application run executed (filter
 * to one app for a focused report, e.g. `smoke_app APP1
 * --report=r.json --profile`). --scheduler=step selects the
 * single-step reference scheduler (default: the event-driven slice
 * scheduler; both produce identical results).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/app_runner.hh"
#include "obs/cli.hh"
#include "prof/profile.hh"
#include "prof/speedscope.hh"
#include "sim/report.hh"

using namespace stitch;

int
main(int argc, char **argv)
{
    obs::CliOptions obsOpts;
    std::string filter;
    sim::SchedulerKind scheduler = sim::SchedulerKind::Slice;
    for (int i = 1; i < argc; ++i) {
        constexpr const char *schedPrefix = "--scheduler=";
        if (std::strncmp(argv[i], schedPrefix,
                         std::strlen(schedPrefix)) == 0)
            scheduler = sim::schedulerKindFromName(
                argv[i] + std::strlen(schedPrefix));
        else if (!obsOpts.parse(argv[i]))
            filter = argv[i];
    }
    obsOpts.begin();

    apps::AppRunner runner;
    runner.setScheduler(scheduler);
    const apps::AppRunResult *last = nullptr;
    static apps::AppRunResult lastStorage;
    for (auto &app : apps::allApps()) {
        if (!filter.empty() &&
            app.name.find(filter) == std::string::npos)
            continue;
        double base = 0;
        for (auto mode :
             {apps::AppMode::Baseline, apps::AppMode::Locus,
              apps::AppMode::StitchNoFusion, apps::AppMode::Stitch}) {
            auto res = runner.run(app, mode);
            if (mode == apps::AppMode::Baseline)
                base = res.perSampleCycles();
            std::printf(
                "%-14s %-18s perSample=%10.0f boost=%.2f msgs=%llu\n",
                app.name.c_str(), appModeName(mode),
                res.perSampleCycles(),
                base / res.perSampleCycles(),
                static_cast<unsigned long long>(res.stats.messages));
            std::fflush(stdout);
            if (mode == apps::AppMode::Stitch && res.hasPlan) {
                int fused = 0, single = 0;
                for (auto &p : res.plan.placements) {
                    if (!p.accel)
                        continue;
                    if (p.accel->type ==
                        compiler::AccelTarget::Type::FusedPair)
                        fused++;
                    else
                        single++;
                }
                std::printf("   plan: %d single, %d fused\n", single,
                            fused);
            }
            lastStorage = res;
            last = &lastStorage;
        }
    }

    obsOpts.end();
    if (last) {
        bool wantProfile =
            obsOpts.profile || !obsOpts.speedscopePath.empty();
        prof::Profile profile;
        if (wantProfile)
            profile = prof::buildProfile(
                last->stats, last->stageBindings,
                static_cast<std::uint64_t>(last->samplesLong));
        if (!obsOpts.reportPath.empty()) {
            auto doc = sim::runReport(last->stats);
            if (!last->statsDump.isNull())
                doc.set("stats", last->statsDump);
            if (wantProfile) {
                doc.set("profile", prof::profileJson(profile));
                if (auto timeline = prof::samplerTimelineJson();
                    !timeline.isNull())
                    doc.set("profile_timeline", timeline);
            }
            obs::writeJsonFile(obsOpts.reportPath, doc);
        }
        if (!obsOpts.statsPath.empty())
            obs::writeJsonFile(obsOpts.statsPath, last->statsDump);
        if (!obsOpts.speedscopePath.empty())
            prof::writeSpeedscope(obsOpts.speedscopePath, profile);
    }
    return 0;
}

/**
 * @file
 * smoke_app — run every (or one matching) application under all four
 * architecture modes and print per-sample cycles and boosts.
 *
 * Usage:
 *   smoke_app [name-filter] [--scheduler=step|slice|compiled]
 *             [--trace=FILE] [--report=FILE] [--stats=FILE]
 *             [--profile[=N]] [--speedscope=FILE] [--dump-hot]
 *             [--dump-traces] [--verbose]
 *
 * --trace records the whole invocation; --report, --stats, --profile
 * and --speedscope describe the last application run executed (filter
 * to one app for a focused report, e.g. `smoke_app APP1
 * --report=r.json --profile`). --scheduler selects the simulator
 * scheduler (default: the event-driven slice scheduler; step is the
 * single-step reference, compiled the translation-cached backend —
 * all three produce identical results). --dump-hot prints the last
 * run's hottest basic blocks; --dump-traces prints its translated
 * micro-op traces (compiled scheduler only).
 */

#include <cstdio>
#include <string>

#include "apps/app_runner.hh"
#include "common/cli.hh"
#include "obs/cli.hh"
#include "prof/profile.hh"
#include "prof/speedscope.hh"
#include "svc/artifacts.hh"

using namespace stitch;

int
main(int argc, char **argv)
{
    obs::CliOptions obsOpts;
    cli::CommonFlags common;
    std::string filter;
    bool dumpHot = false;
    bool dumpTraces = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--dump-hot")
            dumpHot = true;
        else if (arg == "--dump-traces")
            dumpTraces = true;
        else if (!common.parse(argv[i]) && !obsOpts.parse(argv[i]))
            filter = arg;
    }
    sim::SchedulerKind scheduler =
        common.scheduler.empty()
            ? sim::SchedulerKind::Slice
            : sim::schedulerKindFromName(common.scheduler);
    obsOpts.begin();

    apps::AppRunner runner;
    runner.setScheduler(scheduler);
    apps::RunConfig runCfg = runner.config();
    runCfg.dumpTraces = dumpTraces;
    const apps::AppRunResult *last = nullptr;
    static apps::AppRunResult lastStorage;
    for (auto &app : apps::allApps()) {
        if (!filter.empty() &&
            app.name.find(filter) == std::string::npos)
            continue;
        double base = 0;
        for (auto mode :
             {apps::AppMode::Baseline, apps::AppMode::Locus,
              apps::AppMode::StitchNoFusion, apps::AppMode::Stitch}) {
            auto res = runner.run(app, mode, runCfg);
            if (mode == apps::AppMode::Baseline)
                base = res.perSampleCycles();
            std::printf(
                "%-14s %-18s perSample=%10.0f boost=%.2f msgs=%llu\n",
                app.name.c_str(), appModeName(mode),
                res.perSampleCycles(),
                base / res.perSampleCycles(),
                static_cast<unsigned long long>(res.stats.messages));
            std::fflush(stdout);
            if (mode == apps::AppMode::Stitch && res.hasPlan) {
                int fused = 0, single = 0;
                for (auto &p : res.plan.placements) {
                    if (!p.accel)
                        continue;
                    if (p.accel->type ==
                        compiler::AccelTarget::Type::FusedPair)
                        fused++;
                    else
                        single++;
                }
                std::printf("   plan: %d single, %d fused\n", single,
                            fused);
            }
            lastStorage = res;
            last = &lastStorage;
        }
    }

    obsOpts.end();
    if (last && dumpHot) {
        std::printf("hot blocks (last run):\n");
        for (const auto &hb : last->stats.hotBlocks)
            std::printf("  tile %2d  @w%-6u len=%-3u  %llu instrs\n",
                        hb.tile, static_cast<unsigned>(hb.pc),
                        static_cast<unsigned>(hb.length),
                        static_cast<unsigned long long>(
                            hb.instructions));
        std::fflush(stdout);
    }
    if (last && dumpTraces) {
        std::printf("%s", last->traceDump.c_str());
        std::fflush(stdout);
    }
    if (last) {
        bool wantProfile =
            obsOpts.profile || !obsOpts.speedscopePath.empty();
        if (!obsOpts.reportPath.empty()) {
            svc::ReportOptions options;
            options.profile = wantProfile;
            obs::writeJsonFile(obsOpts.reportPath,
                               svc::appReportJson(*last, options));
        }
        if (!obsOpts.statsPath.empty())
            obs::writeJsonFile(obsOpts.statsPath, last->statsDump);
        if (!obsOpts.speedscopePath.empty())
            prof::writeSpeedscope(
                obsOpts.speedscopePath,
                prof::buildProfile(
                    last->stats, last->stageBindings,
                    static_cast<std::uint64_t>(last->samplesLong)));
    }
    return 0;
}

#include <cstdio>
#include "apps/app_runner.hh"
using namespace stitch;
int main(int argc, char** argv) {
    apps::AppRunner runner;
    for (auto &app : apps::allApps()) {
        if (argc > 1 && app.name.find(argv[1]) == std::string::npos) continue;
        double base = 0;
        for (auto mode : {apps::AppMode::Baseline, apps::AppMode::Locus,
                          apps::AppMode::StitchNoFusion, apps::AppMode::Stitch}) {
            auto res = runner.run(app, mode);
            if (mode == apps::AppMode::Baseline) base = res.perSampleCycles();
            std::printf("%-14s %-18s perSample=%10.0f boost=%.2f msgs=%llu\n",
                        app.name.c_str(), appModeName(mode), res.perSampleCycles(),
                        base / res.perSampleCycles(),
                        (unsigned long long)res.stats.messages);
            std::fflush(stdout);
            if (mode == apps::AppMode::Stitch && res.hasPlan) {
                // print fusion summary
                int fused = 0, single = 0;
                for (auto &p : res.plan.placements) {
                    if (!p.accel) continue;
                    if (p.accel->type == compiler::AccelTarget::Type::FusedPair) fused++;
                    else single++;
                }
                std::printf("   plan: %d single, %d fused\n", single, fused);
            }
        }
    }
}

/**
 * @file
 * stitchtop — live introspection client for a running stitchd.
 *
 * Usage:
 *   stitchtop [HOST:PORT] [--host=H] [--port=P]
 *             [--cmd=metrics|healthz|statz|scrape] [--fleet]
 *             [--interval=SEC] [--once] [--json]
 *   stitchtop --version
 *
 * Polls the daemon's introspection endpoint (default: metrics every
 * 2s against 127.0.0.1) and renders a refreshing table: uptime,
 * queue depth, in-flight jobs, per-band backlog, cache hit/miss/evict
 * rates, per-stage latency quantiles, SLO burn-rate status (one
 * sparkline per objective, alerting objectives flagged) and the
 * recent-error ring.
 *
 * --cmd=scrape prints the daemon's Prometheus text exposition
 * verbatim (with --json, the enclosing stitchd-scrape document), so
 * `stitchtop HOST:PORT --cmd=scrape --once` is a scraper with no
 * HTTP stack.
 *
 * --once answers a single poll and exits (non-zero when the daemon is
 * unreachable or answers an error document); with --json the raw
 * response document is printed instead of the table, which is the
 * scriptable mode CI uses:
 *
 *   stitchtop 127.0.0.1:7441 --once --json | jq .jobs.completed
 *
 * --fleet points the poll at a stitchrouter: the router's statz
 * document (fleet-merged counters and latency plus per-shard health)
 * renders as a dashboard with one row per shard — health, routed
 * jobs, transport failures, completed/failed, cache hits and queue
 * depth — above the fleet-wide totals and merged p50/p99. A
 * stitchrouter-statz document is recognized by its schema, so plain
 * `stitchtop ROUTER:PORT --cmd=statz` renders the same view.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "fault/fault.hh"
#include "obs/buildinfo.hh"
#include "obs/json.hh"
#include "svc/server.hh"

using namespace stitch;

namespace
{

double
numField(const obs::Json &doc, const char *key)
{
    return doc.has(key) ? doc.get(key).asDouble() : 0.0;
}

std::string
msCell(const obs::Json &hist, const char *key)
{
    if (!hist.has(key))
        return "-";
    return strformat("%.2f", hist.get(key).asDouble());
}

/** Render an SLO objective's value history as a unicode sparkline
 *  (scaled to its own min..max; flat history renders flat). */
std::string
sparkline(const obs::Json &history)
{
    static const char *blocks[] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
    if (!history.isArray() || history.size() == 0)
        return "(no data)";
    double lo = history.at(0).asDouble(), hi = lo;
    for (std::size_t i = 1; i < history.size(); ++i) {
        const double v = history.at(i).asDouble();
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    for (std::size_t i = 0; i < history.size(); ++i) {
        const double v = history.at(i).asDouble();
        int level = hi > lo ? static_cast<int>((v - lo) /
                                               (hi - lo) * 7.0)
                            : 0;
        level = std::max(0, std::min(7, level));
        out += blocks[level];
    }
    return out;
}

/** Render one metrics/statz document as the interactive view. */
void
renderTable(const obs::Json &doc, const std::string &target)
{
    std::printf("stitchtop — %s  (schema %s, uptime %.1fs, "
                "served %llu)\n\n",
                target.c_str(),
                doc.has("schema") ? doc.get("schema").asString().c_str()
                                  : "?",
                numField(doc, "uptime_s"),
                static_cast<unsigned long long>(
                    doc.has("served") ? doc.get("served").asUint()
                                      : 0));

    std::string bands = "-";
    if (doc.has("per_band_backlog") &&
        doc.get("per_band_backlog").items().size() > 0) {
        bands.clear();
        for (const auto &[prio, count] :
             doc.get("per_band_backlog").items())
            bands += (bands.empty() ? "" : " ") + prio + ":" +
                     std::to_string(count.asUint());
    }
    std::printf("queue depth %llu   in flight %llu   backlog %s\n",
                static_cast<unsigned long long>(
                    static_cast<std::uint64_t>(
                        numField(doc, "queue_depth"))),
                static_cast<unsigned long long>(
                    static_cast<std::uint64_t>(
                        numField(doc, "in_flight"))),
                bands.c_str());

    if (doc.has("jobs")) {
        const obs::Json &jobs = doc.get("jobs");
        std::printf("jobs: %llu submitted, %llu completed "
                    "(%llu simulated, %llu cached), %llu failed, "
                    "%llu cancelled\n",
                    static_cast<unsigned long long>(
                        jobs.get("submitted").asUint()),
                    static_cast<unsigned long long>(
                        jobs.get("completed").asUint()),
                    static_cast<unsigned long long>(
                        jobs.get("simulated").asUint()),
                    static_cast<unsigned long long>(
                        jobs.get("cache_hits").asUint()),
                    static_cast<unsigned long long>(
                        jobs.get("failed").asUint()),
                    static_cast<unsigned long long>(
                        jobs.get("cancelled").asUint()));
    }
    if (doc.has("cache")) {
        const obs::Json &cache = doc.get("cache");
        std::printf("cache: %.0f%% hit rate (%llu mem, %llu disk, "
                    "%llu miss), %llu stores, %llu evictions, "
                    "%llu invalidated\n",
                    cache.get("hit_rate").asDouble() * 100.0,
                    static_cast<unsigned long long>(
                        cache.get("mem_hits").asUint()),
                    static_cast<unsigned long long>(
                        cache.get("disk_hits").asUint()),
                    static_cast<unsigned long long>(
                        cache.get("misses").asUint()),
                    static_cast<unsigned long long>(
                        cache.get("stores").asUint()),
                    static_cast<unsigned long long>(
                        cache.get("evictions").asUint()),
                    static_cast<unsigned long long>(
                        cache.get("invalidated").asUint()));
        if (cache.has("degraded")) {
            const bool degraded = cache.get("degraded").asBool();
            const auto quarantined =
                cache.get("quarantined").asUint();
            const auto writeFailures =
                cache.get("write_failures").asUint();
            const auto tornWrites =
                cache.get("torn_writes").asUint();
            if (degraded || quarantined || writeFailures ||
                tornWrites)
                std::printf(
                    "cache health: %s, %llu write failures, "
                    "%llu torn writes, %llu quarantined\n",
                    degraded ? "DEGRADED (memory-only)" : "ok",
                    static_cast<unsigned long long>(writeFailures),
                    static_cast<unsigned long long>(tornWrites),
                    static_cast<unsigned long long>(quarantined));
        }
    }
    if (doc.has("resilience")) {
        const obs::Json &res = doc.get("resilience");
        const auto field = [&](const char *key) {
            return static_cast<unsigned long long>(
                res.has(key) ? res.get(key).asUint() : 0);
        };
        const unsigned long long maxQueue =
            field("max_queue_depth");
        std::printf(
            "resilience: queue cap %s, %llu rejected, %llu shed, "
            "%llu retries (%llu exhausted), %llu watchdog trips, "
            "%llu deadline exceeded\n",
            maxQueue ? std::to_string(maxQueue).c_str()
                     : "unbounded",
            field("rejected"), field("shed"), field("retries"),
            field("retry_exhausted"), field("watchdog_trips"),
            field("deadline_exceeded"));
        if (field("injected_throws") || field("injected_stalls"))
            std::printf("chaos: %llu injected throws, "
                        "%llu injected stalls\n",
                        field("injected_throws"),
                        field("injected_stalls"));
    }

    if (doc.has("latency")) {
        std::printf("\n");
        TextTable table({"stage", "count", "p50ms", "p90ms", "p99ms",
                         "maxms"});
        for (const auto &[stage, hist] : doc.get("latency").items())
            table.addRow({stage,
                          std::to_string(hist.get("count").asUint()),
                          msCell(hist, "p50_ms"),
                          msCell(hist, "p90_ms"),
                          msCell(hist, "p99_ms"),
                          msCell(hist, "max_ms")});
        table.print();
    }

    if (doc.has("slo")) {
        const obs::Json &slo = doc.get("slo");
        std::printf("\nslo (%llu violations, %llu alerts raised, "
                    "%llu alerting now):\n",
                    static_cast<unsigned long long>(
                        slo.get("violations").asUint()),
                    static_cast<unsigned long long>(
                        slo.get("alerts_raised").asUint()),
                    static_cast<unsigned long long>(
                        slo.get("alerts_active").asUint()));
        const obs::Json &objectives = slo.get("objectives");
        for (std::size_t i = 0; i < objectives.size(); ++i) {
            const obs::Json &o = objectives.at(i);
            std::printf(
                "  %-16s %s %s %-9s  value %-9s burn %.1f/%.1f  %s %s\n",
                o.get("name").asString().c_str(),
                o.get("metric").asString().c_str(),
                o.get("op").asString() == "le" ? "<=" : ">=",
                strformat("%g", o.get("target").asDouble()).c_str(),
                o.get("value_valid").asBool()
                    ? strformat("%.3g",
                                o.get("value").asDouble()).c_str()
                    : "-",
                o.get("burn_short").asDouble(),
                o.get("burn_long").asDouble(),
                sparkline(o.get("history")).c_str(),
                o.get("alerting").asBool() ? "ALERT" : "ok");
        }
    }

    if (doc.has("errors") && doc.get("errors").size() > 0) {
        std::printf("\nrecent errors:\n");
        const obs::Json &errors = doc.get("errors");
        for (std::size_t i = 0; i < errors.size(); ++i) {
            const obs::Json &e = errors.at(i);
            std::printf("  job %llu [%s] %s: %s\n",
                        static_cast<unsigned long long>(
                            e.get("job").asUint()),
                        e.get("trace_id").asString().c_str(),
                        e.get("kind").asString().c_str(),
                        e.get("error").asString().c_str());
        }
    }
}

/** Render a stitchrouter-statz document: per-shard health rows over
 *  the fleet-merged totals. */
void
renderFleetTable(const obs::Json &doc, const std::string &target)
{
    std::printf("stitchtop — fleet via %s  (schema %s, router "
                "uptime %.1fs)\n\n",
                target.c_str(),
                doc.has("schema")
                    ? doc.get("schema").asString().c_str()
                    : "?",
                numField(doc, "uptime_s"));

    if (doc.has("router")) {
        const obs::Json &router = doc.get("router");
        const auto field = [&](const char *key) {
            return static_cast<unsigned long long>(
                router.has(key) ? router.get(key).asUint() : 0);
        };
        std::printf("router: %llu routed, %llu failover reroutes, "
                    "%llu shard failures, %llu unavailable\n",
                    field("jobs_routed"),
                    field("failover_reroutes"),
                    field("shard_failures"), field("unavailable"));
    }

    if (doc.has("fleet")) {
        const obs::Json &fleet = doc.get("fleet");
        std::printf(
            "fleet: %llu/%llu shards healthy, %llu completed "
            "(%llu cached, %.0f%% hit rate), %llu failed\n",
            static_cast<unsigned long long>(
                fleet.get("healthy_shards").asUint()),
            static_cast<unsigned long long>(
                fleet.get("total_shards").asUint()),
            static_cast<unsigned long long>(static_cast<std::uint64_t>(
                numField(fleet, "jobs_completed"))),
            static_cast<unsigned long long>(static_cast<std::uint64_t>(
                numField(fleet, "jobs_cache_hits"))),
            numField(fleet, "fleet_hit_rate") * 100.0,
            static_cast<unsigned long long>(static_cast<std::uint64_t>(
                numField(fleet, "jobs_failed"))));
        if (fleet.has("e2e_p50_ms"))
            std::printf("fleet e2e latency: p50 %.2fms, p99 %.2fms "
                        "(merged across shards)\n",
                        numField(fleet, "e2e_p50_ms"),
                        numField(fleet, "e2e_p99_ms"));
    }

    if (doc.has("shards")) {
        std::printf("\n");
        TextTable table({"shard", "health", "routed", "failures",
                         "completed", "failed", "cached", "queue"});
        const obs::Json &shards = doc.get("shards");
        for (std::size_t i = 0; i < shards.size(); ++i) {
            const obs::Json &s = shards.at(i);
            const bool healthy =
                s.has("healthy") && s.get("healthy").asBool();
            const auto cell = [&](const char *key) {
                return s.has(key)
                           ? std::to_string(
                                 static_cast<std::uint64_t>(
                                     numField(s, key)))
                           : std::string("-");
            };
            table.addRow({s.get("name").asString(),
                          healthy ? "up" : "DOWN", cell("routed"),
                          cell("failures"), cell("jobs_completed"),
                          cell("jobs_failed"),
                          cell("jobs_cache_hits"),
                          cell("queue_depth")});
        }
        table.print();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    int port = 0;
    std::string cmd = "metrics";
    double intervalS = 2.0;
    bool once = false, json = false;
    std::string value;

    bool fleet = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--version") == 0) {
            std::printf("%s\n",
                        obs::versionText("stitchtop").c_str());
            return 0;
        }
        if (cli::keyedValue(arg, "--cmd=", &cmd) ||
            cli::keyedValue(arg, "--host=", &host))
            continue;
        if (cli::keyedValue(arg, "--port=", &value)) {
            port = std::atoi(value.c_str());
            continue;
        }
        if (std::strcmp(arg, "--fleet") == 0) {
            // The router's statz carries the per-shard dashboard.
            fleet = true;
            cmd = "statz";
            continue;
        }
        if (cli::keyedValue(arg, "--interval=", &value)) {
            intervalS = std::atof(value.c_str());
            continue;
        }
        if (std::strcmp(arg, "--once") == 0) {
            once = true;
            continue;
        }
        if (std::strcmp(arg, "--json") == 0) {
            json = true;
            continue;
        }
        if (arg[0] == '-') {
            std::fprintf(stderr, "stitchtop: unknown flag %s\n",
                         arg);
            return 2;
        }
        // HOST:PORT positional.
        const std::string target = arg;
        const auto colon = target.rfind(':');
        if (colon == std::string::npos) {
            std::fprintf(stderr,
                         "stitchtop: expected HOST:PORT, got %s\n",
                         arg);
            return 2;
        }
        host = target.substr(0, colon);
        port = std::atoi(target.c_str() + colon + 1);
    }

    if (port <= 0) {
        std::fprintf(
            stderr,
            "usage: stitchtop HOST:PORT [--host=H] [--cmd=metrics|"
            "healthz|statz|scrape] [--fleet] [--interval=SEC] "
            "[--once] [--json]\n");
        return 2;
    }
    if (cmd != "metrics" && cmd != "healthz" && cmd != "statz" &&
        cmd != "scrape") {
        std::fprintf(stderr, "stitchtop: unknown --cmd=%s\n",
                     cmd.c_str());
        return 2;
    }

    obs::Json request = obs::Json::object();
    request.set("cmd", cmd);
    const std::string target =
        host + ":" + std::to_string(port);

    for (;;) {
        obs::Json doc;
        try {
            doc = svc::requestReport(
                host, static_cast<std::uint16_t>(port), request);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "stitchtop: %s\n", e.what());
            return 1;
        }
        const bool isError =
            doc.has("status") &&
            doc.get("status").asString() == "error";

        if (json) {
            std::printf("%s\n", doc.dump(2).c_str());
        } else {
            if (!once)
                std::printf("\x1b[2J\x1b[H"); // clear + home
            if (isError)
                std::printf("stitchtop: daemon error: %s\n",
                            doc.get("error").asString().c_str());
            else if (cmd == "scrape")
                // The exposition is already a text format; unwrap
                // the envelope and pass it through untouched.
                std::fputs(
                    doc.get("exposition").asString().c_str(),
                    stdout);
            else if (fleet ||
                     (doc.has("schema") &&
                      doc.get("schema").asString() ==
                          "stitchrouter-statz"))
                renderFleetTable(doc, target);
            else
                renderTable(doc, target);
            std::fflush(stdout);
        }

        if (once)
            return isError ? 1 : 0;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(intervalS));
    }
}

# Test driver for the stitchq batch front-end (acceptance gate of the
# simulation-as-a-service tentpole):
#
#  1. A mixed JSONL batch drained with --jobs=4 must exit 0 and write
#     a per-job report that is byte-identical to a serial
#     `smoke_app APP1-gesture --report=...` of the same spec.
#  2. A duplicate spec in the same batch coalesces: its report file is
#     byte-identical to the first occurrence's.
#  3. Re-running the batch against the warm on-disk cache must perform
#     ZERO simulations (service counters: simulated == 0, every job a
#     cache hit) and reproduce every report byte for byte.
#
# Invoked by stitchq_batch_smoke with -DSTITCHQ=... -DSMOKE_APP=...
# -DOUT_DIR=...

set(work "${OUT_DIR}/stitchq_smoke")
file(REMOVE_RECURSE "${work}")
file(MAKE_DIRECTORY "${work}")

# The batch: one spec matching smoke_app's defaults, a baseline run,
# a comment, and a duplicate of the first spec at another priority
# (priority is presentation-only, so it must coalesce).
file(WRITE "${work}/batch.jsonl"
"{\"schema\":\"stitch-job\",\"version\":1,\"name\":\"gesture\",\"app\":\"APP1-gesture\",\"mode\":\"stitch\"}
{\"schema\":\"stitch-job\",\"version\":1,\"name\":\"gesture-base\",\"app\":\"APP1-gesture\",\"mode\":\"baseline\"}
# comment lines and blank lines are skipped

{\"schema\":\"stitch-job\",\"version\":1,\"name\":\"gesture-again\",\"priority\":9,\"app\":\"APP1-gesture\",\"mode\":\"stitch\"}
")

# The serial reference: smoke_app's --report of the same application
# is built by the same svc::appReportJson, so equality must be exact.
execute_process(
    COMMAND "${SMOKE_APP}" APP1-gesture
            "--report=${work}/serial_report.json"
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "smoke_app reference run failed: ${rc}")
endif()

foreach(pass cold warm)
    execute_process(
        COMMAND "${STITCHQ}" "${work}/batch.jsonl" "--jobs=4"
                "--cache=${work}/cache" "--out=${work}/${pass}"
                "--summary=${work}/${pass}_summary.json"
        RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "stitchq ${pass} pass failed: ${rc}")
    endif()
endforeach()

# 1. Batch report == serial smoke_app report, byte for byte.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${work}/cold/job000.json" "${work}/serial_report.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "stitchq job000 report differs from the "
                        "serial smoke_app report")
endif()

# 2. The duplicate spec produced the identical report.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${work}/cold/job000.json" "${work}/cold/job002.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "duplicate spec did not coalesce to an "
                        "identical report")
endif()

# 3a. Warm pass reproduced every report.
foreach(job job000 job001 job002)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${work}/cold/${job}.json" "${work}/warm/${job}.json"
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "warm-cache report ${job} differs from "
                            "the cold run")
    endif()
endforeach()

# 3b. ...without simulating anything: all three jobs were cache hits.
file(READ "${work}/warm_summary.json" summary)
string(JSON simulated GET "${summary}"
       service counters svc jobs simulated)
string(JSON hits GET "${summary}"
       service counters svc jobs cache_hits)
if(NOT simulated EQUAL 0 OR NOT hits EQUAL 3)
    message(FATAL_ERROR "warm batch expected 0 simulated / 3 cache "
                        "hits, got ${simulated} / ${hits}")
endif()

message(STATUS "stitchq batch matches serial reports; warm cache "
               "re-ran 0 simulations")

# Test driver: the stitchd-fleet acceptance gate. The heavy lifting
# (three peered shards + a router, the seeded stitchload replay, the
# mid-run SIGKILL and the shared-cache-tier aftermath) needs
# background processes, so it lives in check_fleet.py; this wrapper
# keeps the ctest registration idiom uniform with the other
# check_*.cmake drivers. Invoked by fleet_failover_survives with
# -DSTITCHD=... -DSTITCHROUTER=... -DSTITCHLOAD=... -DSTITCHTOP=...
# -DPYTHON=... -DOUT_DIR=...

execute_process(
    COMMAND "${PYTHON}" "${CMAKE_CURRENT_LIST_DIR}/check_fleet.py"
            "--stitchd=${STITCHD}"
            "--stitchrouter=${STITCHROUTER}"
            "--stitchload=${STITCHLOAD}"
            "--stitchtop=${STITCHTOP}"
            "--out=${OUT_DIR}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "check_fleet.py failed with status ${rc}")
endif()

/**
 * @file
 * stitchd — the simulation job engine behind a localhost TCP socket.
 *
 * Usage:
 *   stitchd [--port=P] [--port-file=FILE] [--cache=DIR] [--jobs=N]
 *           [--max-requests=N] [--report=FILE] [--max-queue=N]
 *           [--frame-limit=BYTES] [--read-timeout-ms=N]
 *           [--metrics-interval-ms=N] [--slo=FILE]
 *           [--flight-dir=DIR] [--peers=HOST:PORT,...]
 *           [--remote-timeout-ms=N] [--remote-inline] [--verbose]
 *   stitchd --send=HOST:PORT JOB.json [--retries=N]
 *           [--retry-base-ms=X] [--retry-seed=S]
 *   stitchd --version
 *
 * Fleet mode (DESIGN.md §16): --peers names the *other* shards of a
 * stitchd fleet. The daemon then serves its ResultCache to them over
 * the "cacheget"/"cacheput" verbs and consults theirs before
 * simulating (read-through), replicating fresh results back out on a
 * background thread (write-behind; --remote-inline replicates before
 * answering instead, for deterministic scripts). A job simulated on
 * any shard is a cache hit fleet-wide. See tools/stitchrouter for
 * the consistent-hash front-end.
 *
 * Continuous telemetry (DESIGN.md §14): the daemon samples its
 * counters every --metrics-interval-ms (default 1000; 0 disables),
 * evaluates the --slo=FILE objectives (stitch-slo v1 JSON; built-in
 * defaults otherwise) per closed window with multi-window burn-rate
 * alerting, and keeps a per-job flight recorder whose rings dump to
 * --flight-dir as flight-<traceid>.jsonl on every typed failure.
 * {"cmd":"scrape"} answers the Prometheus text exposition.
 *
 * Resilience: --max-queue bounds the engine's pending queue
 * (overload answers a typed "overloaded" error instead of queueing
 * without bound), --frame-limit caps the accepted request frame, and
 * --read-timeout-ms bounds how long a connected-but-silent client
 * may hold the serve loop. --send retries transport failures and
 * "overloaded" rejections with deterministic jittered exponential
 * backoff when --retries is given.
 *
 * Serving mode binds 127.0.0.1 (--port=0 picks a free port; the
 * chosen one is printed and, with --port-file, written to FILE so
 * scripts can discover it) and answers one length-prefixed stitch-job
 * document per connection with a length-prefixed stitch-response.
 * Identical jobs hit the engine's result cache, so a daemon with
 * --cache=DIR amortizes simulations across every client. Requests
 * carrying a "cmd" key ("healthz" / "metrics" / "statz" / "scrape")
 * are answered from live engine state — see tools/stitchtop for a
 * client.
 *
 * Shutdown is graceful: SIGINT/SIGTERM closes the listener (new
 * connections are refused), the request in flight drains, and the
 * daemon prints a final service report (also written to --report=FILE
 * when given) before exiting 0.
 *
 * --send is the bundled client: submit one job file to a running
 * daemon and print the response to stdout (exit 1 on a status:"error"
 * response) — no second binary or python needed for scripting.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/buildinfo.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "svc/server.hh"

using namespace stitch;

namespace
{

/** Set once the Server exists so the signal handler can reach it.
 *  Server::stop() is async-signal-safe (shutdown/close + a lock-free
 *  atomic exchange). */
svc::Server *gServer = nullptr;

void
onShutdownSignal(int)
{
    if (gServer)
        gServer->stop();
}

std::string
readFileText(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw fault::ConfigError(detail::formatMessage(
            "stitchd: cannot open ", path, ": ",
            std::strerror(errno)));
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

int
sendMode(const std::string &target, const std::string &jobPath,
         const svc::RetryPolicy &retry)
{
    const auto colon = target.rfind(':');
    if (colon == std::string::npos) {
        std::fprintf(stderr,
                     "stitchd: --send expects HOST:PORT, got %s\n",
                     target.c_str());
        return 2;
    }
    const std::string host = target.substr(0, colon);
    const int port = std::atoi(target.c_str() + colon + 1);

    const std::string text = readFileText(jobPath);

    obs::Json response = svc::requestReportWithRetry(
        host, static_cast<std::uint16_t>(port),
        obs::Json::parse(text), retry);
    std::printf("%s\n", response.dump(2).c_str());
    return response.get("status").asString() == "ok" ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::CommonFlags common;
    std::string cacheDir, portFile, sendTarget, jobPath, reportPath;
    std::string sloPath, flightDir, peersCsv;
    int port = 0, maxRequests = 0, maxQueue = 0;
    std::uint64_t metricsIntervalMs = 1000;
    svc::RemoteCacheOptions remoteCache;
    svc::ServerOptions serverOptions;
    svc::RetryPolicy retry;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--version") == 0) {
            std::printf("%s\n",
                        obs::versionText("stitchd").c_str());
            return 0;
        }
        if (common.parse(arg) ||
            cli::keyedValue(arg, "--cache=", &cacheDir) ||
            cli::keyedValue(arg, "--port-file=", &portFile) ||
            cli::keyedValue(arg, "--report=", &reportPath) ||
            cli::keyedValue(arg, "--send=", &sendTarget))
            continue;
        if (cli::keyedValue(arg, "--port=", &value)) {
            port = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--max-requests=", &value)) {
            maxRequests = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--max-queue=", &value)) {
            maxQueue = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--frame-limit=", &value)) {
            serverOptions.maxFrameBytes = static_cast<std::uint32_t>(
                std::strtoul(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--read-timeout-ms=", &value)) {
            serverOptions.readTimeoutMs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--metrics-interval-ms=", &value)) {
            metricsIntervalMs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (cli::keyedValue(arg, "--slo=", &sloPath) ||
            cli::keyedValue(arg, "--flight-dir=", &flightDir) ||
            cli::keyedValue(arg, "--peers=", &peersCsv))
            continue;
        if (cli::keyedValue(arg, "--remote-timeout-ms=", &value)) {
            remoteCache.timeoutMs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (std::strcmp(arg, "--remote-inline") == 0) {
            remoteCache.writeBehind = false;
            continue;
        }
        if (cli::keyedValue(arg, "--retries=", &value)) {
            retry.maxAttempts = 1 + std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--retry-base-ms=", &value)) {
            retry.baseDelayMs = std::atof(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--retry-seed=", &value)) {
            retry.seed = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
            continue;
        }
        if (std::strcmp(arg, "--verbose") == 0) {
            obs::Registry::setVerbosity(Verbosity::Info);
            continue;
        }
        if (arg[0] == '-') {
            std::fprintf(stderr, "stitchd: unknown flag %s\n", arg);
            return 2;
        }
        jobPath = arg;
    }

    try {
        if (!sendTarget.empty()) {
            if (jobPath.empty()) {
                std::fprintf(stderr,
                             "stitchd: --send needs a JOB.json\n");
                return 2;
            }
            retry.validate();
            return sendMode(sendTarget, jobPath, retry);
        }

        svc::EngineOptions options;
        options.jobs = cli::resolveJobs(common.jobs);
        options.cacheDir = cacheDir;
        options.maxQueueDepth = maxQueue;
        // The daemon always collects spans: quantiles for the
        // compile/stitch/simulate stages must be there when a
        // stitchtop attaches, not only after a restart.
        options.telemetry = true;
        // ...and always flies with the black box armed; the dump
        // directory is opt-in.
        options.flightRecorder = true;
        options.flightDir = flightDir;
        options.metricsIntervalMs = metricsIntervalMs;
        // Validate the peer list eagerly (typed, before the engine
        // spins up workers), then hand the endpoints over.
        for (const svc::PeerEndpoint &peer :
             svc::parsePeerList(peersCsv))
            remoteCache.peers.push_back(peer.name());
        options.remoteCache = remoteCache;
        options.slo = sloPath.empty()
                          ? telem::SloConfig::defaults()
                          : telem::SloConfig::fromJson(
                                obs::Json::parse(
                                    readFileText(sloPath)));
        svc::JobEngine engine(options);
        svc::Server server(engine,
                           static_cast<std::uint16_t>(port),
                           serverOptions);

        gServer = &server;
        struct sigaction sa{};
        sa.sa_handler = onShutdownSignal;
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);

        std::printf("stitchd: listening on 127.0.0.1:%u\n",
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        if (!portFile.empty()) {
            std::FILE *f = obs::openArtifactFile(portFile);
            std::fprintf(f, "%u\n",
                         static_cast<unsigned>(server.port()));
            std::fclose(f);
        }

        server.serve(maxRequests);
        gServer = nullptr;

        // Drain the write-behind replication queue before reporting
        // so the final counters cover every store attempt.
        engine.flushRemoteCache();

        // Drained: emit the final service report.
        obs::Json report = engine.serviceReportJson();
        std::printf(
            "stitchd: served %llu requests in %.1fs; final service "
            "report follows\n%s\n",
            static_cast<unsigned long long>(server.servedCount()),
            server.uptimeS(), report.dump(2).c_str());
        if (!reportPath.empty())
            obs::writeJsonFile(reportPath, report);
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "stitchd: %s\n", e.what());
        return 2;
    }
}

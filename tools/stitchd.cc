/**
 * @file
 * stitchd — the simulation job engine behind a localhost TCP socket.
 *
 * Usage:
 *   stitchd [--port=P] [--port-file=FILE] [--cache=DIR] [--jobs=N]
 *           [--max-requests=N] [--verbose]
 *   stitchd --send=HOST:PORT JOB.json
 *
 * Serving mode binds 127.0.0.1 (--port=0 picks a free port; the
 * chosen one is printed and, with --port-file, written to FILE so
 * scripts can discover it) and answers one length-prefixed stitch-job
 * document per connection with a length-prefixed stitch-response.
 * Identical jobs hit the engine's result cache, so a daemon with
 * --cache=DIR amortizes simulations across every client.
 *
 * --send is the bundled client: submit one job file to a running
 * daemon and print the response to stdout (exit 1 on a status:"error"
 * response) — no second binary or python needed for scripting.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "svc/server.hh"

using namespace stitch;

namespace
{

int
sendMode(const std::string &target, const std::string &jobPath)
{
    const auto colon = target.rfind(':');
    if (colon == std::string::npos) {
        std::fprintf(stderr,
                     "stitchd: --send expects HOST:PORT, got %s\n",
                     target.c_str());
        return 2;
    }
    const std::string host = target.substr(0, colon);
    const int port = std::atoi(target.c_str() + colon + 1);

    std::FILE *f = std::fopen(jobPath.c_str(), "rb");
    if (!f) {
        std::fprintf(stderr, "stitchd: cannot open %s: %s\n",
                     jobPath.c_str(), std::strerror(errno));
        return 2;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    obs::Json response = svc::requestReport(
        host, static_cast<std::uint16_t>(port),
        obs::Json::parse(text));
    std::printf("%s\n", response.dump(2).c_str());
    return response.get("status").asString() == "ok" ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::CommonFlags common;
    std::string cacheDir, portFile, sendTarget, jobPath;
    int port = 0, maxRequests = 0;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (common.parse(arg) ||
            cli::keyedValue(arg, "--cache=", &cacheDir) ||
            cli::keyedValue(arg, "--port-file=", &portFile) ||
            cli::keyedValue(arg, "--send=", &sendTarget))
            continue;
        if (cli::keyedValue(arg, "--port=", &value)) {
            port = std::atoi(value.c_str());
            continue;
        }
        if (cli::keyedValue(arg, "--max-requests=", &value)) {
            maxRequests = std::atoi(value.c_str());
            continue;
        }
        if (std::strcmp(arg, "--verbose") == 0) {
            obs::Registry::setVerbosity(Verbosity::Info);
            continue;
        }
        if (arg[0] == '-') {
            std::fprintf(stderr, "stitchd: unknown flag %s\n", arg);
            return 2;
        }
        jobPath = arg;
    }

    try {
        if (!sendTarget.empty()) {
            if (jobPath.empty()) {
                std::fprintf(stderr,
                             "stitchd: --send needs a JOB.json\n");
                return 2;
            }
            return sendMode(sendTarget, jobPath);
        }

        svc::EngineOptions options;
        options.jobs = cli::resolveJobs(common.jobs);
        options.cacheDir = cacheDir;
        svc::JobEngine engine(options);
        svc::Server server(engine,
                           static_cast<std::uint16_t>(port));

        std::printf("stitchd: listening on 127.0.0.1:%u\n",
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        if (!portFile.empty()) {
            std::FILE *f = obs::openArtifactFile(portFile);
            std::fprintf(f, "%u\n",
                         static_cast<unsigned>(server.port()));
            std::fclose(f);
        }

        server.serve(maxRequests);
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "stitchd: %s\n", e.what());
        return 2;
    }
}

# Test driver: the fast end of the bench-trajectory harness. Three
# cheap benches emit --json metric documents, trajectory merges them,
# and the aggregate must be a valid stitch-bench-trajectory document
# naming every contributing bench. Invoked by
# bench_trajectory_aggregates with -DTABLE3=... -DTABLE4=...
# -DFIG13=... -DTRAJECTORY=... -DPYTHON=... -DOUT_DIR=...

set(traj "${OUT_DIR}/trajectory_subset.json")
set(inputs "")
foreach(pair IN ITEMS
        "TABLE3:table3_accel_area" "TABLE4:table4_noc_timing"
        "FIG13:fig13_power_area")
    string(REPLACE ":" ";" pair "${pair}")
    list(GET pair 0 var)
    list(GET pair 1 name)
    set(out "${OUT_DIR}/traj_${name}.json")
    execute_process(
        COMMAND "${${var}}" "--json=${out}"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${name} failed with status ${rc}")
    endif()
    if(NOT EXISTS "${out}")
        message(FATAL_ERROR "${name} wrote no --json document")
    endif()
    list(APPEND inputs "${out}")
endforeach()

execute_process(
    COMMAND "${TRAJECTORY}" "${traj}" ${inputs}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trajectory failed with status ${rc}")
endif()

execute_process(
    COMMAND "${PYTHON}" -c "
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc['schema'] == 'stitch-bench-trajectory', doc['schema']
for bench in ('table3_accel_area', 'table4_noc_timing',
              'fig13_power_area'):
    assert bench in doc['benches'], bench
    assert doc['benches'][bench], bench + ' has no metrics'
" "${traj}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trajectory aggregate failed validation")
endif()

#include <cstdio>
#include "kernels/catalog.hh"
#include "compiler/profiler.hh"
#include "compiler/ise_ident.hh"
#include "compiler/selector.hh"
#include "compiler/liveness.hh"
using namespace stitch;
using namespace stitch::compiler;
int main(int argc, char** argv) {
    auto input = kernels::kernelByName(argv[1]).build({});
    auto prof = profileProgram(input.program);
    auto lo = blockLiveOuts(input.program, prof.blocks);
    std::printf("cycles=%llu hot=%zu\n", (unsigned long long)prof.totalCycles, prof.hotBlocks.size());
    for (auto bi : prof.hotBlocks) {
        auto &bb = prof.blocks[bi];
        std::printf("== block %zu [%zu,%zu) count=%llu size=%zu\n", bi, bb.begin, bb.end,
                    (unsigned long long)bb.execCount, bb.size());
        Dfg dfg = Dfg::build(input.program, bb, input.spmBaseRegs, &lo[bi]);
        auto cands = identifyCandidates(dfg);
        std::printf("candidates=%zu\n", cands.size());
        if (argc > 2) std::printf("%s", dfg.toString().c_str());
        for (auto target : {AccelTarget::single(core::PatchKind::ATMA),
                            AccelTarget::fused(core::PatchKind::ATMA, core::PatchKind::ATAS),
                            AccelTarget::locus()}) {
            auto sels = selectIses(dfg, cands, target);
            long long saved = 0; for (auto &s : sels) saved += s.savedPerExec;
            std::printf("target %-18s: %zu sels, saved/exec=%lld:", target.name().c_str(), sels.size(), saved);
            for (auto &s : sels) { std::printf(" ["); for (int n : s.cand.nodes) std::printf("%d ", n); std::printf("s%lld]", (long long)s.savedPerExec); }
            std::printf("\n");
        }
    }
}

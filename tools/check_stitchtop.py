#!/usr/bin/env python3
"""Golden-schema check on stitchd's four introspection commands.

Starts a real stitchd (collector at 100 ms, default SLOs, flight
recorder armed), drives one healthy job and one doomed job
(deadline_ms=1) through the wire, then asserts the shape of every
`stitchtop --once --json` answer:

  healthz  liveness + build provenance
  metrics  live engine state incl. SLO status, series, flight stats
  statz    metrics + the full v3 service report
  scrape   Prometheus exposition: >= 30 well-formed stitch_* series,
           counters monotone across two scrapes

and that the doomed job left a flight-*.jsonl black box behind.

Invoked by the stitchtop_schema_golden ctest entry via
check_stitchtop.cmake; exits non-zero with a message on the first
violation.
"""

import argparse
import glob
import json
import os
import shutil
import signal
import subprocess
import sys
import time


def fail(message):
    print("check_stitchtop: " + message, file=sys.stderr)
    sys.exit(1)


def job_doc(name, samples_long, deadline_ms=None):
    doc = {
        "schema": "stitch-job",
        "version": 1,
        "name": name,
        "app": "APP1-gesture",
        "mode": "baseline",
        "samples_short": 1,
        "samples_long": samples_long,
    }
    if deadline_ms is not None:
        doc["deadline_ms"] = deadline_ms
    return doc


def introspect(stitchtop, port, cmd):
    proc = subprocess.run(
        [stitchtop, "127.0.0.1:%d" % port, "--once", "--json",
         "--cmd=" + cmd],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, timeout=30)
    if proc.returncode != 0:
        fail("stitchtop --cmd=%s exited %d: %s"
             % (cmd, proc.returncode, proc.stderr.decode()))
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail("--cmd=%s did not answer JSON (%s): %r"
             % (cmd, e, proc.stdout[:200]))


def require(doc, key, cmd):
    if key not in doc:
        fail("--cmd=%s answer lacks %r (got keys %s)"
             % (cmd, key, sorted(doc.keys())))
    return doc[key]


def exposition_samples(text):
    """{series-with-labels: float value} for every sample line."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        if not line.startswith("stitch_"):
            fail("exposition series lacks the stitch_ prefix: %r"
                 % line)
        name, _, value = line.rpartition(" ")
        if not name:
            fail("malformed exposition line: %r" % line)
        try:
            samples[name] = float(value)
        except ValueError:
            fail("non-numeric exposition value: %r" % line)
    return samples


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--stitchd", required=True)
    ap.add_argument("--stitchtop", required=True)
    ap.add_argument("--out", required=True)
    args = ap.parse_args()

    out = args.out
    port_file = os.path.join(out, "stitchtop_port")
    flight_dir = os.path.join(out, "stitchtop_flight")
    report_file = os.path.join(out, "stitchtop_service_report.json")
    log_file = os.path.join(out, "stitchtop_stitchd.log")
    shutil.rmtree(flight_dir, ignore_errors=True)
    for stale in (port_file, report_file):
        if os.path.exists(stale):
            os.remove(stale)

    daemon = None
    log = open(log_file, "w")
    try:
        daemon = subprocess.Popen(
            [args.stitchd, "--port=0", "--port-file=" + port_file,
             "--metrics-interval-ms=100",
             "--flight-dir=" + flight_dir,
             "--report=" + report_file],
            stdout=log, stderr=subprocess.STDOUT)

        deadline = time.time() + 15
        port = None
        while time.time() < deadline:
            if daemon.poll() is not None:
                fail("stitchd exited early (%d); see %s"
                     % (daemon.returncode, log_file))
            if os.path.exists(port_file):
                text = open(port_file).read().strip()
                if text:
                    port = int(text)
                    break
            time.sleep(0.05)
        if port is None:
            fail("stitchd never wrote " + port_file)

        # One healthy job, then a doomed one: deadline_ms=1 against a
        # multi-ms simulation reliably trips the watchdog, fails the
        # job typed as "deadline" and must dump a flight record.
        for name, doc, want_ok in (
                ("ok", job_doc("ok", samples_long=2), True),
                ("doomed",
                 job_doc("doomed", samples_long=16, deadline_ms=1),
                 False)):
            path = os.path.join(out, "stitchtop_job_%s.json" % name)
            with open(path, "w") as f:
                json.dump(doc, f)
            proc = subprocess.run(
                [args.stitchd, "--send=127.0.0.1:%d" % port, path],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                timeout=120)
            if want_ok and proc.returncode != 0:
                fail("healthy job was rejected: %s"
                     % proc.stdout.decode())
            if not want_ok and proc.returncode == 0:
                fail("deadline_ms=1 job unexpectedly succeeded")

        # Let at least one 100 ms collector window close over the
        # completed traffic before asserting on series/SLO state.
        time.sleep(0.35)

        healthz = introspect(args.stitchtop, port, "healthz")
        if require(healthz, "schema", "healthz") != "stitchd-healthz":
            fail("healthz schema is %r" % healthz["schema"])
        if require(healthz, "status", "healthz") != "ok":
            fail("healthz status is %r" % healthz["status"])
        build = require(healthz, "build", "healthz")
        for key in ("git", "compiler", "build_type", "sanitize"):
            require(build, key, "healthz.build")

        metrics = introspect(args.stitchtop, port, "metrics")
        if require(metrics, "schema", "metrics") != "stitchd-metrics":
            fail("metrics schema is %r" % metrics["schema"])
        for key in ("queue_depth", "in_flight", "jobs", "cache",
                    "resilience", "latency", "slo", "series",
                    "flight", "errors"):
            require(metrics, key, "metrics")
        if metrics["jobs"]["submitted"] < 2:
            fail("metrics saw %d submitted jobs, expected >= 2"
                 % metrics["jobs"]["submitted"])
        objectives = require(metrics["slo"], "objectives",
                             "metrics.slo")
        if len(objectives) != 3:
            fail("expected the 3 default SLO objectives, got %d"
                 % len(objectives))
        for objective in objectives:
            for key in ("name", "metric", "target", "burn_short",
                        "burn_long", "alerting", "history",
                        "value_valid"):
                require(objective, key, "metrics.slo.objectives[]")
        if require(metrics["flight"], "dumps", "metrics.flight") < 1:
            fail("the doomed job left no flight dump")
        if require(metrics["series"], "windows", "metrics.series") < 1:
            fail("the 100 ms collector closed no windows")

        statz = introspect(args.stitchtop, port, "statz")
        if require(statz, "schema", "statz") != "stitchd-statz":
            fail("statz schema is %r" % statz["schema"])
        service = require(statz, "service", "statz")
        if require(service, "schema", "statz.service") \
                != "stitch-service-report":
            fail("statz.service schema is %r" % service["schema"])
        if require(service, "version", "statz.service") != 3:
            fail("service report version is %r, expected 3"
                 % service["version"])
        for key in ("build", "slo", "series", "flight", "counters",
                    "latency"):
            require(service, key, "statz.service")

        scrape = introspect(args.stitchtop, port, "scrape")
        if require(scrape, "schema", "scrape") != "stitchd-scrape":
            fail("scrape schema is %r" % scrape["schema"])
        if not require(scrape, "content_type", "scrape") \
                .startswith("text/plain"):
            fail("scrape content_type is %r" % scrape["content_type"])
        first = exposition_samples(
            require(scrape, "exposition", "scrape"))
        if len(first) < 30:
            fail("scrape answered %d series, expected >= 30"
                 % len(first))
        for needed in ("stitch_jobs_submitted_total",
                       "stitch_jobs_completed_total",
                       "stitch_jobs_failed_total",
                       "stitch_queue_depth",
                       "stitch_uptime_seconds"):
            if needed not in first:
                fail("scrape lacks %s" % needed)
        if not any(name.startswith("stitch_build_info{")
                   for name in first):
            fail("scrape lacks stitch_build_info")
        if not any(name.startswith("stitch_slo_burn_rate_short{")
                   for name in first):
            fail("scrape lacks the per-objective SLO burn gauges")

        second = exposition_samples(
            introspect(args.stitchtop, port, "scrape")["exposition"])
        for name, value in first.items():
            if "_total" not in name:
                continue
            if name not in second:
                fail("counter %s vanished between scrapes" % name)
            if second[name] < value:
                fail("counter %s went backwards: %g -> %g"
                     % (name, value, second[name]))

        # Scrape totals must agree with the live report tree.
        jobs = metrics["jobs"]
        for short, full in (("submitted",
                             "stitch_jobs_submitted_total"),
                            ("failed", "stitch_jobs_failed_total")):
            if first[full] < jobs[short]:
                fail("scrape %s=%g disagrees with metrics %s=%d"
                     % (full, first[full], short, jobs[short]))

        records = glob.glob(
            os.path.join(flight_dir, "flight-*.jsonl"))
        if not records:
            fail("no flight-*.jsonl artifact in " + flight_dir)
        with open(records[0]) as f:
            head = json.loads(f.readline())
            events = [json.loads(line) for line in f]
        if head.get("schema") != "stitch-flight-record":
            fail("flight record schema is %r" % head.get("schema"))
        if head.get("kind") != "deadline":
            fail("flight record kind is %r, expected deadline"
                 % head.get("kind"))
        if head.get("events") != len(events) or not events:
            fail("flight record promises %r events, carries %d"
                 % (head.get("events"), len(events)))

        daemon.send_signal(signal.SIGTERM)
        if daemon.wait(timeout=30) != 0:
            fail("stitchd exited %d on SIGTERM" % daemon.returncode)
        daemon = None
        final = json.load(open(report_file))
        if final.get("version") != 3 or "build" not in final:
            fail("final --report is not a v3 service report")
    finally:
        if daemon is not None:
            daemon.kill()
            daemon.wait()
        log.close()

    print("check_stitchtop: all four commands answer the golden "
          "schema (%d series scraped)" % len(first))


if __name__ == "__main__":
    main()

# Test driver: the event-driven slice scheduler and the compiled
# (translation-cached) scheduler must be byte-exact against the
# single-step reference on the full fault campaign. The campaign runs
# three times over the same scenarios — once per scheduler — and every
# scenario report (healthy + 43 fault runs, each embedding run totals,
# the stitch plan and the stats dump) must compare equal byte for
# byte. Invoked by sched_parity_is_exact with
# -DFAULT_CAMPAIGN=... -DOUT_DIR=...

set(scheds step slice compiled)

foreach(sched IN LISTS scheds)
    file(REMOVE_RECURSE "${OUT_DIR}/sched_parity_${sched}")
endforeach()

foreach(sched IN LISTS scheds)
    execute_process(
        COMMAND "${FAULT_CAMPAIGN}" "--scheduler=${sched}"
                "--out=${OUT_DIR}/sched_parity_${sched}"
        RESULT_VARIABLE rc
        OUTPUT_QUIET ERROR_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "fault_campaign --scheduler=${sched} failed "
                "with status ${rc}")
    endif()
endforeach()

set(step_dir "${OUT_DIR}/sched_parity_step")
file(GLOB step_reports RELATIVE "${step_dir}" "${step_dir}/*.json")
list(LENGTH step_reports count)
if(count EQUAL 0)
    message(FATAL_ERROR "the step campaign wrote no reports")
endif()

foreach(sched slice compiled)
    set(other_dir "${OUT_DIR}/sched_parity_${sched}")
    foreach(name IN LISTS step_reports)
        if(NOT EXISTS "${other_dir}/${name}")
            message(FATAL_ERROR
                    "${sched} campaign is missing report ${name}")
        endif()
        execute_process(
            COMMAND ${CMAKE_COMMAND} -E compare_files
                    "${step_dir}/${name}" "${other_dir}/${name}"
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                    "scheduler parity violated: ${name} differs "
                    "between --scheduler=step and "
                    "--scheduler=${sched}")
        endif()
    endforeach()
endforeach()

message(STATUS "${count} scenario reports byte-identical across "
               "step/slice/compiled schedulers")

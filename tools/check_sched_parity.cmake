# Test driver: the event-driven slice scheduler must be byte-exact
# against the single-step reference on the full fault campaign. The
# campaign runs twice over the same scenarios — once per scheduler —
# and every scenario report (healthy + 43 fault runs, each embedding
# run totals, the stitch plan and the stats dump) must compare equal
# byte for byte. Invoked by sched_parity_is_exact with
# -DFAULT_CAMPAIGN=... -DOUT_DIR=...

set(step_dir "${OUT_DIR}/sched_parity_step")
set(slice_dir "${OUT_DIR}/sched_parity_slice")
file(REMOVE_RECURSE "${step_dir}" "${slice_dir}")

foreach(sched step slice)
    execute_process(
        COMMAND "${FAULT_CAMPAIGN}" "--scheduler=${sched}"
                "--out=${OUT_DIR}/sched_parity_${sched}"
        RESULT_VARIABLE rc
        OUTPUT_QUIET ERROR_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "fault_campaign --scheduler=${sched} failed "
                "with status ${rc}")
    endif()
endforeach()

file(GLOB step_reports RELATIVE "${step_dir}" "${step_dir}/*.json")
list(LENGTH step_reports count)
if(count EQUAL 0)
    message(FATAL_ERROR "the step campaign wrote no reports")
endif()

foreach(name IN LISTS step_reports)
    if(NOT EXISTS "${slice_dir}/${name}")
        message(FATAL_ERROR
                "slice campaign is missing report ${name}")
    endif()
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${step_dir}/${name}" "${slice_dir}/${name}"
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "scheduler parity violated: ${name} differs "
                "between --scheduler=step and --scheduler=slice")
    endif()
endforeach()

message(STATUS "${count} scenario reports byte-identical across "
               "schedulers")

#include <cstdio>
#include "kernels/catalog.hh"
#include "kernels/golden.hh"
#include "compiler/driver.hh"
using namespace stitch;
int main(int argc, char**argv) {
    const char* pick = argc > 1 ? argv[1] : nullptr;
    for (const auto &factory : kernels::kernelCatalog()) {
        if (pick && factory.name != pick) continue;
        auto input = factory.build(kernels::PipelineShape{});
        auto compiled = compiler::compileKernel(factory.name, input);
        std::printf("%-10s sw=%8llu", factory.name.c_str(),
                    (unsigned long long)compiled.softwareCycles);
        auto *sp = compiled.bestSinglePatch();
        auto *st = compiled.bestStitch();
        auto *lo = compiled.locusVariant();
        std::printf("  locus=%.2f  patch=%.2f(%s)  stitch=%.2f(%s)\n",
                    lo?lo->speedup:0.0, sp?sp->speedup:0.0,
                    sp?sp->target.name().c_str():"-",
                    st?st->speedup:0.0,
                    st?st->target.name().c_str():"-");
        std::fflush(stdout);
    }
    return 0;
}

#include <cstdio>
#include "apps/app_runner.hh"
using namespace stitch;
int main(int argc, char** argv) {
    apps::AppRunner runner;
    auto appsAll = apps::allApps();
    for (auto &app : appsAll) {
        if (argc > 1 && app.name.find(argv[1]) == std::string::npos) continue;
        auto res = runner.run(app, apps::AppMode::Stitch);
        std::printf("%s Stitch perSample=%.0f\n", app.name.c_str(), res.perSampleCycles());
        // reconstruct profiles for printing
        for (int k = 0; k < (int)app.stageKernels.size(); ++k) {
            kernels::PipelineShape shape{app.inDegree(k), app.outDegree(k), 1};
            auto &ck = runner.compiledFor(app.stageKernels[k], shape);
            auto &p = res.plan.placements[k];
            std::printf("  %-10s tile%-2d sw=%6llu planned=%6llu %s\n",
                app.stageKernels[k].c_str(), p.tile,
                (unsigned long long)ck.softwareCycles,
                (unsigned long long)p.cycles,
                p.accel ? p.accel->name().c_str() : "software");
        }
    }
}

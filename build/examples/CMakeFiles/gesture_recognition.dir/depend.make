# Empty dependencies file for gesture_recognition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gesture_recognition.dir/gesture_recognition.cpp.o"
  "CMakeFiles/gesture_recognition.dir/gesture_recognition.cpp.o.d"
  "gesture_recognition"
  "gesture_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesture_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/stitch_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/stitch_power.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/stitch_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stitch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/stitch_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/stitch_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/stitch_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/stitch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/stitch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stitch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stitch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

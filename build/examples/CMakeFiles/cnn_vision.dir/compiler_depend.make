# Empty compiler generated dependencies file for cnn_vision.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cnn_vision.dir/cnn_vision.cpp.o"
  "CMakeFiles/cnn_vision.dir/cnn_vision.cpp.o.d"
  "cnn_vision"
  "cnn_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/stitch_cpu.dir/core.cc.o"
  "CMakeFiles/stitch_cpu.dir/core.cc.o.d"
  "libstitch_cpu.a"
  "libstitch_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

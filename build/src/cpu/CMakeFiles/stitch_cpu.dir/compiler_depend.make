# Empty compiler generated dependencies file for stitch_cpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstitch_cpu.a"
)

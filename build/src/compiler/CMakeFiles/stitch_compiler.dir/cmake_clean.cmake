file(REMOVE_RECURSE
  "CMakeFiles/stitch_compiler.dir/chains.cc.o"
  "CMakeFiles/stitch_compiler.dir/chains.cc.o.d"
  "CMakeFiles/stitch_compiler.dir/dfg.cc.o"
  "CMakeFiles/stitch_compiler.dir/dfg.cc.o.d"
  "CMakeFiles/stitch_compiler.dir/driver.cc.o"
  "CMakeFiles/stitch_compiler.dir/driver.cc.o.d"
  "CMakeFiles/stitch_compiler.dir/ise_ident.cc.o"
  "CMakeFiles/stitch_compiler.dir/ise_ident.cc.o.d"
  "CMakeFiles/stitch_compiler.dir/liveness.cc.o"
  "CMakeFiles/stitch_compiler.dir/liveness.cc.o.d"
  "CMakeFiles/stitch_compiler.dir/mapper.cc.o"
  "CMakeFiles/stitch_compiler.dir/mapper.cc.o.d"
  "CMakeFiles/stitch_compiler.dir/profiler.cc.o"
  "CMakeFiles/stitch_compiler.dir/profiler.cc.o.d"
  "CMakeFiles/stitch_compiler.dir/rewriter.cc.o"
  "CMakeFiles/stitch_compiler.dir/rewriter.cc.o.d"
  "CMakeFiles/stitch_compiler.dir/selector.cc.o"
  "CMakeFiles/stitch_compiler.dir/selector.cc.o.d"
  "CMakeFiles/stitch_compiler.dir/stitcher.cc.o"
  "CMakeFiles/stitch_compiler.dir/stitcher.cc.o.d"
  "libstitch_compiler.a"
  "libstitch_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stitch_compiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstitch_compiler.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/chains.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/chains.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/chains.cc.o.d"
  "/root/repo/src/compiler/dfg.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/dfg.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/dfg.cc.o.d"
  "/root/repo/src/compiler/driver.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/driver.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/driver.cc.o.d"
  "/root/repo/src/compiler/ise_ident.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/ise_ident.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/ise_ident.cc.o.d"
  "/root/repo/src/compiler/liveness.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/liveness.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/liveness.cc.o.d"
  "/root/repo/src/compiler/mapper.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/mapper.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/mapper.cc.o.d"
  "/root/repo/src/compiler/profiler.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/profiler.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/profiler.cc.o.d"
  "/root/repo/src/compiler/rewriter.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/rewriter.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/rewriter.cc.o.d"
  "/root/repo/src/compiler/selector.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/selector.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/selector.cc.o.d"
  "/root/repo/src/compiler/stitcher.cc" "src/compiler/CMakeFiles/stitch_compiler.dir/stitcher.cc.o" "gcc" "src/compiler/CMakeFiles/stitch_compiler.dir/stitcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stitch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/stitch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/stitch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stitch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/stitch_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for stitch_apps.
# This may be replaced when dependencies are built.

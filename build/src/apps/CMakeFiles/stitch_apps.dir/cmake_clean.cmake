file(REMOVE_RECURSE
  "CMakeFiles/stitch_apps.dir/app_runner.cc.o"
  "CMakeFiles/stitch_apps.dir/app_runner.cc.o.d"
  "CMakeFiles/stitch_apps.dir/apps.cc.o"
  "CMakeFiles/stitch_apps.dir/apps.cc.o.d"
  "libstitch_apps.a"
  "libstitch_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

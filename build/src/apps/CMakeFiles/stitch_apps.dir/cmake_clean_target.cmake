file(REMOVE_RECURSE
  "libstitch_apps.a"
)

# Empty dependencies file for stitch_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstitch_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/stitch_common.dir/logging.cc.o"
  "CMakeFiles/stitch_common.dir/logging.cc.o.d"
  "CMakeFiles/stitch_common.dir/table.cc.o"
  "CMakeFiles/stitch_common.dir/table.cc.o.d"
  "libstitch_common.a"
  "libstitch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libstitch_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/micro.cc" "src/core/CMakeFiles/stitch_core.dir/micro.cc.o" "gcc" "src/core/CMakeFiles/stitch_core.dir/micro.cc.o.d"
  "/root/repo/src/core/ops.cc" "src/core/CMakeFiles/stitch_core.dir/ops.cc.o" "gcc" "src/core/CMakeFiles/stitch_core.dir/ops.cc.o.d"
  "/root/repo/src/core/patch.cc" "src/core/CMakeFiles/stitch_core.dir/patch.cc.o" "gcc" "src/core/CMakeFiles/stitch_core.dir/patch.cc.o.d"
  "/root/repo/src/core/patch_config.cc" "src/core/CMakeFiles/stitch_core.dir/patch_config.cc.o" "gcc" "src/core/CMakeFiles/stitch_core.dir/patch_config.cc.o.d"
  "/root/repo/src/core/snoc.cc" "src/core/CMakeFiles/stitch_core.dir/snoc.cc.o" "gcc" "src/core/CMakeFiles/stitch_core.dir/snoc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stitch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

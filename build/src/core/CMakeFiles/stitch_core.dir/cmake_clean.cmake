file(REMOVE_RECURSE
  "CMakeFiles/stitch_core.dir/micro.cc.o"
  "CMakeFiles/stitch_core.dir/micro.cc.o.d"
  "CMakeFiles/stitch_core.dir/ops.cc.o"
  "CMakeFiles/stitch_core.dir/ops.cc.o.d"
  "CMakeFiles/stitch_core.dir/patch.cc.o"
  "CMakeFiles/stitch_core.dir/patch.cc.o.d"
  "CMakeFiles/stitch_core.dir/patch_config.cc.o"
  "CMakeFiles/stitch_core.dir/patch_config.cc.o.d"
  "CMakeFiles/stitch_core.dir/snoc.cc.o"
  "CMakeFiles/stitch_core.dir/snoc.cc.o.d"
  "libstitch_core.a"
  "libstitch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

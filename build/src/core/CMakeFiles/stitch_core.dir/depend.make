# Empty dependencies file for stitch_core.
# This may be replaced when dependencies are built.

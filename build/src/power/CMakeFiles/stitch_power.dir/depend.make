# Empty dependencies file for stitch_power.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstitch_power.a"
)

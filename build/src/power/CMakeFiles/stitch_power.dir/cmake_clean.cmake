file(REMOVE_RECURSE
  "CMakeFiles/stitch_power.dir/power_model.cc.o"
  "CMakeFiles/stitch_power.dir/power_model.cc.o.d"
  "libstitch_power.a"
  "libstitch_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

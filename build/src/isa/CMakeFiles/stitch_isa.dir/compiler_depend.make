# Empty compiler generated dependencies file for stitch_isa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstitch_isa.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/stitch_isa.dir/assembler.cc.o"
  "CMakeFiles/stitch_isa.dir/assembler.cc.o.d"
  "CMakeFiles/stitch_isa.dir/isa.cc.o"
  "CMakeFiles/stitch_isa.dir/isa.cc.o.d"
  "CMakeFiles/stitch_isa.dir/program.cc.o"
  "CMakeFiles/stitch_isa.dir/program.cc.o.d"
  "libstitch_isa.a"
  "libstitch_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

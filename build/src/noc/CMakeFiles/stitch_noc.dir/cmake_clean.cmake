file(REMOVE_RECURSE
  "CMakeFiles/stitch_noc.dir/noc_model.cc.o"
  "CMakeFiles/stitch_noc.dir/noc_model.cc.o.d"
  "libstitch_noc.a"
  "libstitch_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stitch_noc.
# This may be replaced when dependencies are built.

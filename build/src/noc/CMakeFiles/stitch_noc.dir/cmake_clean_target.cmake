file(REMOVE_RECURSE
  "libstitch_noc.a"
)

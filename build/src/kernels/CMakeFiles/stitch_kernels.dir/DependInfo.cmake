
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/catalog.cc" "src/kernels/CMakeFiles/stitch_kernels.dir/catalog.cc.o" "gcc" "src/kernels/CMakeFiles/stitch_kernels.dir/catalog.cc.o.d"
  "/root/repo/src/kernels/dsp.cc" "src/kernels/CMakeFiles/stitch_kernels.dir/dsp.cc.o" "gcc" "src/kernels/CMakeFiles/stitch_kernels.dir/dsp.cc.o.d"
  "/root/repo/src/kernels/extra.cc" "src/kernels/CMakeFiles/stitch_kernels.dir/extra.cc.o" "gcc" "src/kernels/CMakeFiles/stitch_kernels.dir/extra.cc.o.d"
  "/root/repo/src/kernels/golden.cc" "src/kernels/CMakeFiles/stitch_kernels.dir/golden.cc.o" "gcc" "src/kernels/CMakeFiles/stitch_kernels.dir/golden.cc.o.d"
  "/root/repo/src/kernels/kernel.cc" "src/kernels/CMakeFiles/stitch_kernels.dir/kernel.cc.o" "gcc" "src/kernels/CMakeFiles/stitch_kernels.dir/kernel.cc.o.d"
  "/root/repo/src/kernels/misc.cc" "src/kernels/CMakeFiles/stitch_kernels.dir/misc.cc.o" "gcc" "src/kernels/CMakeFiles/stitch_kernels.dir/misc.cc.o.d"
  "/root/repo/src/kernels/vision.cc" "src/kernels/CMakeFiles/stitch_kernels.dir/vision.cc.o" "gcc" "src/kernels/CMakeFiles/stitch_kernels.dir/vision.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stitch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/stitch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/stitch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/stitch_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/stitch_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stitch_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

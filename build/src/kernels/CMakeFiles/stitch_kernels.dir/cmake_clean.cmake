file(REMOVE_RECURSE
  "CMakeFiles/stitch_kernels.dir/catalog.cc.o"
  "CMakeFiles/stitch_kernels.dir/catalog.cc.o.d"
  "CMakeFiles/stitch_kernels.dir/dsp.cc.o"
  "CMakeFiles/stitch_kernels.dir/dsp.cc.o.d"
  "CMakeFiles/stitch_kernels.dir/extra.cc.o"
  "CMakeFiles/stitch_kernels.dir/extra.cc.o.d"
  "CMakeFiles/stitch_kernels.dir/golden.cc.o"
  "CMakeFiles/stitch_kernels.dir/golden.cc.o.d"
  "CMakeFiles/stitch_kernels.dir/kernel.cc.o"
  "CMakeFiles/stitch_kernels.dir/kernel.cc.o.d"
  "CMakeFiles/stitch_kernels.dir/misc.cc.o"
  "CMakeFiles/stitch_kernels.dir/misc.cc.o.d"
  "CMakeFiles/stitch_kernels.dir/vision.cc.o"
  "CMakeFiles/stitch_kernels.dir/vision.cc.o.d"
  "libstitch_kernels.a"
  "libstitch_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

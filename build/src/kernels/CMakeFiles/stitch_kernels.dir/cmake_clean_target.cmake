file(REMOVE_RECURSE
  "libstitch_kernels.a"
)

# Empty compiler generated dependencies file for stitch_kernels.
# This may be replaced when dependencies are built.

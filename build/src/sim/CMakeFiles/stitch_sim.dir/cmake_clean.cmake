file(REMOVE_RECURSE
  "CMakeFiles/stitch_sim.dir/system.cc.o"
  "CMakeFiles/stitch_sim.dir/system.cc.o.d"
  "libstitch_sim.a"
  "libstitch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

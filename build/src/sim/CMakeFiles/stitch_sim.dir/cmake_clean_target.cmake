file(REMOVE_RECURSE
  "libstitch_sim.a"
)

# Empty dependencies file for stitch_sim.
# This may be replaced when dependencies are built.

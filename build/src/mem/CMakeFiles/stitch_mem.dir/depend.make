# Empty dependencies file for stitch_mem.
# This may be replaced when dependencies are built.

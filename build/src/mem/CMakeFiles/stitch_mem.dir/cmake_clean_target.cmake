file(REMOVE_RECURSE
  "libstitch_mem.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/stitch_mem.dir/cache.cc.o"
  "CMakeFiles/stitch_mem.dir/cache.cc.o.d"
  "CMakeFiles/stitch_mem.dir/sparse_memory.cc.o"
  "CMakeFiles/stitch_mem.dir/sparse_memory.cc.o.d"
  "CMakeFiles/stitch_mem.dir/tile_memory.cc.o"
  "CMakeFiles/stitch_mem.dir/tile_memory.cc.o.d"
  "libstitch_mem.a"
  "libstitch_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/stitch_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_assembler.cc" "tests/CMakeFiles/stitch_tests.dir/test_assembler.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_assembler.cc.o.d"
  "/root/repo/tests/test_bitutil.cc" "tests/CMakeFiles/stitch_tests.dir/test_bitutil.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_bitutil.cc.o.d"
  "/root/repo/tests/test_chains.cc" "tests/CMakeFiles/stitch_tests.dir/test_chains.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_chains.cc.o.d"
  "/root/repo/tests/test_cpu.cc" "tests/CMakeFiles/stitch_tests.dir/test_cpu.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_cpu.cc.o.d"
  "/root/repo/tests/test_dfg.cc" "tests/CMakeFiles/stitch_tests.dir/test_dfg.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_dfg.cc.o.d"
  "/root/repo/tests/test_driver.cc" "tests/CMakeFiles/stitch_tests.dir/test_driver.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_driver.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/stitch_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/stitch_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_ise.cc" "tests/CMakeFiles/stitch_tests.dir/test_ise.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_ise.cc.o.d"
  "/root/repo/tests/test_kernels.cc" "tests/CMakeFiles/stitch_tests.dir/test_kernels.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_kernels.cc.o.d"
  "/root/repo/tests/test_mapper.cc" "tests/CMakeFiles/stitch_tests.dir/test_mapper.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_mapper.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/stitch_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_micro_locus.cc" "tests/CMakeFiles/stitch_tests.dir/test_micro_locus.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_micro_locus.cc.o.d"
  "/root/repo/tests/test_noc.cc" "tests/CMakeFiles/stitch_tests.dir/test_noc.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_noc.cc.o.d"
  "/root/repo/tests/test_patch.cc" "tests/CMakeFiles/stitch_tests.dir/test_patch.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_patch.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/stitch_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/stitch_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rewriter.cc" "tests/CMakeFiles/stitch_tests.dir/test_rewriter.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_rewriter.cc.o.d"
  "/root/repo/tests/test_snoc.cc" "tests/CMakeFiles/stitch_tests.dir/test_snoc.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_snoc.cc.o.d"
  "/root/repo/tests/test_stitcher.cc" "tests/CMakeFiles/stitch_tests.dir/test_stitcher.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_stitcher.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/stitch_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_timing_area.cc" "tests/CMakeFiles/stitch_tests.dir/test_timing_area.cc.o" "gcc" "tests/CMakeFiles/stitch_tests.dir/test_timing_area.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/stitch_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/stitch_power.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/stitch_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stitch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/stitch_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/stitch_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/stitch_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/stitch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/stitch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stitch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stitch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for stitch_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stitchc.dir/stitchc.cc.o"
  "CMakeFiles/stitchc.dir/stitchc.cc.o.d"
  "stitchc"
  "stitchc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitchc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

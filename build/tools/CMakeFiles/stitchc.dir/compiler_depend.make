# Empty compiler generated dependencies file for stitchc.
# This may be replaced when dependencies are built.

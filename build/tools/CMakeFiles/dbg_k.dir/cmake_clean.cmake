file(REMOVE_RECURSE
  "CMakeFiles/dbg_k.dir/dbg_k.cc.o"
  "CMakeFiles/dbg_k.dir/dbg_k.cc.o.d"
  "dbg_k"
  "dbg_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbg_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

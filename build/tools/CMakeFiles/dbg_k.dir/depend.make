# Empty dependencies file for dbg_k.
# This may be replaced when dependencies are built.

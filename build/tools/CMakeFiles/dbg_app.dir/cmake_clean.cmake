file(REMOVE_RECURSE
  "CMakeFiles/dbg_app.dir/dbg_app.cc.o"
  "CMakeFiles/dbg_app.dir/dbg_app.cc.o.d"
  "dbg_app"
  "dbg_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbg_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dbg_app.
# This may be replaced when dependencies are built.

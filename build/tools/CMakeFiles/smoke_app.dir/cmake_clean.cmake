file(REMOVE_RECURSE
  "CMakeFiles/smoke_app.dir/smoke_app.cc.o"
  "CMakeFiles/smoke_app.dir/smoke_app.cc.o.d"
  "smoke_app"
  "smoke_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

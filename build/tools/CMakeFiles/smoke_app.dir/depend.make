# Empty dependencies file for smoke_app.
# This may be replaced when dependencies are built.

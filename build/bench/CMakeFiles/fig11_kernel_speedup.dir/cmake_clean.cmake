file(REMOVE_RECURSE
  "CMakeFiles/fig11_kernel_speedup.dir/fig11_kernel_speedup.cc.o"
  "CMakeFiles/fig11_kernel_speedup.dir/fig11_kernel_speedup.cc.o.d"
  "fig11_kernel_speedup"
  "fig11_kernel_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_kernel_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

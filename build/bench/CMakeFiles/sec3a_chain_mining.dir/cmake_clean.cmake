file(REMOVE_RECURSE
  "CMakeFiles/sec3a_chain_mining.dir/sec3a_chain_mining.cc.o"
  "CMakeFiles/sec3a_chain_mining.dir/sec3a_chain_mining.cc.o.d"
  "sec3a_chain_mining"
  "sec3a_chain_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3a_chain_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec3a_chain_mining.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_stitching_maps.dir/fig10_stitching_maps.cc.o"
  "CMakeFiles/fig10_stitching_maps.dir/fig10_stitching_maps.cc.o.d"
  "fig10_stitching_maps"
  "fig10_stitching_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_stitching_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

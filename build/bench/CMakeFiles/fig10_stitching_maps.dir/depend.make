# Empty dependencies file for fig10_stitching_maps.
# This may be replaced when dependencies are built.

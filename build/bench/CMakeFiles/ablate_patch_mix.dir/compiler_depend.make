# Empty compiler generated dependencies file for ablate_patch_mix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablate_patch_mix.dir/ablate_patch_mix.cc.o"
  "CMakeFiles/ablate_patch_mix.dir/ablate_patch_mix.cc.o.d"
  "ablate_patch_mix"
  "ablate_patch_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_patch_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

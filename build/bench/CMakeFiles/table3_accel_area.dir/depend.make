# Empty dependencies file for table3_accel_area.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table3_accel_area.dir/table3_accel_area.cc.o"
  "CMakeFiles/table3_accel_area.dir/table3_accel_area.cc.o.d"
  "table3_accel_area"
  "table3_accel_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_accel_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

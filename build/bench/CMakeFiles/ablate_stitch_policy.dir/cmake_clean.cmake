file(REMOVE_RECURSE
  "CMakeFiles/ablate_stitch_policy.dir/ablate_stitch_policy.cc.o"
  "CMakeFiles/ablate_stitch_policy.dir/ablate_stitch_policy.cc.o.d"
  "ablate_stitch_policy"
  "ablate_stitch_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_stitch_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table4_noc_timing.dir/table4_noc_timing.cc.o"
  "CMakeFiles/table4_noc_timing.dir/table4_noc_timing.cc.o.d"
  "table4_noc_timing"
  "table4_noc_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_noc_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table4_noc_timing.
# This may be replaced when dependencies are built.

# Empty dependencies file for table1_gesture.
# This may be replaced when dependencies are built.

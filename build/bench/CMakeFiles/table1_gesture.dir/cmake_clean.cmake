file(REMOVE_RECURSE
  "CMakeFiles/table1_gesture.dir/table1_gesture.cc.o"
  "CMakeFiles/table1_gesture.dir/table1_gesture.cc.o.d"
  "table1_gesture"
  "table1_gesture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_gesture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

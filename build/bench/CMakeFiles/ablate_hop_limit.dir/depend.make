# Empty dependencies file for ablate_hop_limit.
# This may be replaced when dependencies are built.

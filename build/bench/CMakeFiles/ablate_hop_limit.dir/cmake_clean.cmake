file(REMOVE_RECURSE
  "CMakeFiles/ablate_hop_limit.dir/ablate_hop_limit.cc.o"
  "CMakeFiles/ablate_hop_limit.dir/ablate_hop_limit.cc.o.d"
  "ablate_hop_limit"
  "ablate_hop_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hop_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec3c_spm_ablation.
# This may be replaced when dependencies are built.

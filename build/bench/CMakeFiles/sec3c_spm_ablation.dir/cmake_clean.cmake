file(REMOVE_RECURSE
  "CMakeFiles/sec3c_spm_ablation.dir/sec3c_spm_ablation.cc.o"
  "CMakeFiles/sec3c_spm_ablation.dir/sec3c_spm_ablation.cc.o.d"
  "sec3c_spm_ablation"
  "sec3c_spm_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3c_spm_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig15_wearable_soa.
# This may be replaced when dependencies are built.

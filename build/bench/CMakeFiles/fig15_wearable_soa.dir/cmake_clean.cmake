file(REMOVE_RECURSE
  "CMakeFiles/fig15_wearable_soa.dir/fig15_wearable_soa.cc.o"
  "CMakeFiles/fig15_wearable_soa.dir/fig15_wearable_soa.cc.o.d"
  "fig15_wearable_soa"
  "fig15_wearable_soa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_wearable_soa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

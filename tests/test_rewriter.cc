/** @file Rewriter tests: semantics preservation, branch retargeting,
 *  immediate-pool behaviour. */

#include <gtest/gtest.h>

#include <set>

#include "compiler/profiler.hh"
#include "compiler/liveness.hh"
#include "compiler/rewriter.hh"
#include "cpu/patch_handler.hh"
#include "isa/assembler.hh"
#include "mem/addrmap.hh"

namespace stitch::compiler
{
namespace
{

using namespace isa::reg;
using core::PatchKind;
using isa::Assembler;

/** Compile one block's selections for a target and rewrite. */
RewrittenProgram
rewriteFor(const isa::Program &prog, const AccelTarget &target)
{
    auto profile = profileProgram(prog);
    auto liveOuts = blockLiveOuts(prog, profile.blocks);
    std::map<std::size_t, Dfg> dfgs;
    std::map<std::size_t, std::vector<SelectedIse>> selections;
    for (std::size_t bi : profile.hotBlocks) {
        Dfg dfg = Dfg::build(prog, profile.blocks[bi], {s2, s3},
                             &liveOuts[bi]);
        auto sels =
            selectIses(dfg, identifyCandidates(dfg), target);
        if (!sels.empty()) {
            selections.emplace(bi, std::move(sels));
            dfgs.emplace(bi, std::move(dfg));
        }
    }
    return rewriteProgram(prog, profile.blocks, selections, dfgs);
}

/** A hot loop computing a MAC over SPM data. */
isa::Program
macLoop()
{
    Assembler a("mac");
    auto loop = a.newLabel();
    a.li(s2, static_cast<std::int32_t>(mem::spmBase));
    a.li(t0, 0);  // i
    a.li(a0, 0);  // acc
    a.bind(loop);
    a.slli(t1, t0, 2);
    a.add(t1, s2, t1);
    a.lw(t2, t1, 0);
    a.mul(t3, t2, t2);
    a.add(a0, a0, t3);
    a.addi(t0, t0, 1);
    a.slti(t4, t0, 32);
    a.bne(t4, zero, loop);
    a.sw(a0, s2, 256);
    a.halt();
    auto prog = a.finish();
    std::vector<Word> data;
    for (Word i = 0; i < 32; ++i)
        data.push_back(i * 3 + 1);
    prog.addDataWords(mem::spmBase, data);
    return prog;
}

Word
runAndGetResult(const RewrittenProgram &binary,
                std::optional<PatchKind> kind)
{
    mem::TileMemory memory;
    std::unique_ptr<cpu::CustomHandler> handler;
    if (kind)
        handler = std::make_unique<cpu::LocalPatchHandler>(*kind,
                                                           memory);
    cpu::Core core(0, memory, handler.get(), nullptr);
    core.loadProgram(binary.program);
    core.runToHalt();
    return memory.spmPeek(256);
}

TEST(Rewriter, MacLoopPreservesResultAndSpeedsUp)
{
    auto prog = macLoop();
    RewrittenProgram software;
    software.program = prog;
    Word expect = runAndGetResult(software, std::nullopt);

    auto rewritten =
        rewriteFor(prog, AccelTarget::single(PatchKind::ATMA));
    EXPECT_GT(rewritten.custCount, 0);
    EXPECT_EQ(runAndGetResult(rewritten, PatchKind::ATMA), expect);

    // Timing: the rewritten version must be faster.
    mem::TileMemory m1, m2;
    cpu::Core c1(0, m1, nullptr, nullptr);
    c1.loadProgram(prog);
    c1.runToHalt();
    cpu::LocalPatchHandler h(PatchKind::ATMA, m2);
    cpu::Core c2(0, m2, &h, nullptr);
    c2.loadProgram(rewritten.program);
    c2.runToHalt();
    EXPECT_LT(c2.time(), c1.time());
}

TEST(Rewriter, BranchTargetsRemapped)
{
    auto prog = macLoop();
    auto rewritten =
        rewriteFor(prog, AccelTarget::single(PatchKind::ATMA));
    // The rewritten loop must still iterate 32 times: check the
    // dynamic instruction count implies looping.
    mem::TileMemory memory;
    cpu::LocalPatchHandler h(PatchKind::ATMA, memory);
    cpu::Core core(0, memory, &h, nullptr);
    core.loadProgram(rewritten.program);
    core.runToHalt();
    EXPECT_GT(core.instructionsRetired(), 32u);
    EXPECT_EQ(core.stats().get("custom_instructions") % 32, 0u);
}

TEST(Rewriter, ImmediatePreambleIsHoisted)
{
    // The load displacement (+4) must be materialized once at entry,
    // not inside the loop.
    Assembler a("imm");
    auto loop = a.newLabel();
    a.li(s2, static_cast<std::int32_t>(mem::spmBase));
    a.li(t0, 0);
    a.li(a0, 0);
    a.bind(loop);
    a.slli(t1, t0, 2);
    a.add(t1, s2, t1);
    a.lw(t2, t1, 4);
    a.add(a0, a0, t2);
    a.addi(t0, t0, 1);
    a.slti(t4, t0, 16);
    a.bne(t4, zero, loop);
    a.sw(a0, s2, 512);
    a.halt();
    auto prog = a.finish();
    std::vector<Word> data(32, 5);
    prog.addDataWords(mem::spmBase, data);

    auto rewritten =
        rewriteFor(prog, AccelTarget::single(PatchKind::ATMA));
    ASSERT_GT(rewritten.custCount, 0);
    // First instruction materializes the displacement into the
    // scratch pool (addi sN, r0, 4).
    const auto &first = rewritten.program.code()[0];
    EXPECT_EQ(first.op, isa::Opcode::Addi);
    EXPECT_GE(first.rd0, firstScratchReg);
    EXPECT_EQ(first.imm, 4);

    RewrittenProgram software;
    software.program = prog;
    mem::TileMemory m1;
    cpu::Core c1(0, m1, nullptr, nullptr);
    c1.loadProgram(prog);
    c1.runToHalt();
    mem::TileMemory m2;
    cpu::LocalPatchHandler h(PatchKind::ATMA, m2);
    cpu::Core c2(0, m2, &h, nullptr);
    c2.loadProgram(rewritten.program);
    c2.runToHalt();
    EXPECT_EQ(m1.spmPeek(512), m2.spmPeek(512));
}

TEST(Rewriter, EmptySelectionsIsIdentityWithPreamble)
{
    Assembler a("id");
    a.addi(t0, t0, 1);
    a.halt();
    auto prog = a.finish();
    auto rewritten = rewriteProgram(prog, findBasicBlocks(prog, {}),
                                    {}, {});
    EXPECT_EQ(rewritten.custCount, 0);
    EXPECT_EQ(rewritten.program.code().size(), prog.code().size());
}

TEST(Rewriter, LocusTargetBuildsMicroTable)
{
    auto prog = macLoop();
    auto rewritten = rewriteFor(prog, AccelTarget::locus());
    EXPECT_GT(rewritten.custCount, 0);
    EXPECT_EQ(rewritten.microTable.size(),
              rewritten.program.iseTable().size());
    // Blobs index the micro table.
    for (auto blob : rewritten.program.iseTable())
        EXPECT_LT(blob, rewritten.microTable.size());
}

TEST(Rewriter, FusedTargetMarksFusedCusts)
{
    // mul -> srai requires fusion; ensure the counter sees it.
    Assembler a("f");
    auto loop = a.newLabel();
    a.li(t0, 0);
    a.li(a0, 1);
    a.bind(loop);
    a.mul(t2, a0, a0);
    a.srai(a0, t2, 3);
    a.addi(a0, a0, 7);
    a.addi(t0, t0, 1);
    a.slti(t4, t0, 50);
    a.bne(t4, zero, loop);
    a.li(s2, static_cast<std::int32_t>(mem::spmBase));
    a.sw(a0, s2, 0);
    a.halt();
    auto prog = a.finish();
    auto rewritten = rewriteFor(
        prog, AccelTarget::fused(PatchKind::ATMA, PatchKind::ATAS));
    EXPECT_GT(rewritten.fusedCustCount, 0);
}

} // namespace
} // namespace stitch::compiler

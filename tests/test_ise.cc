/** @file ISE identification tests: enumeration, legality, I/O. */

#include <gtest/gtest.h>

#include <set>

#include "compiler/ise_ident.hh"
#include "isa/assembler.hh"

namespace stitch::compiler
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

Dfg
dfgOf(isa::Program &prog, std::vector<RegId> spmRegs = {})
{
    auto blocks = findBasicBlocks(prog, {});
    // These straight-line snippets have no consumers after the block:
    // analyze with an empty live-out set so outputs are driven purely
    // by in-block dataflow.
    static const std::set<RegId> emptyLive;
    return Dfg::build(prog, blocks[0], spmRegs, &emptyLive);
}

bool
hasCandidate(const std::vector<IseCandidate> &cands,
             const std::vector<int> &nodes)
{
    for (const auto &c : cands)
        if (c.nodes == nodes)
            return true;
    return false;
}

TEST(IseIdent, EnumeratesConnectedSubgraphs)
{
    Assembler a("c");
    a.add(t2, t0, t1);  // n0
    a.mul(t3, t2, t0);  // n1
    a.slli(t4, t3, 2);  // n2
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog);
    auto cands = identifyCandidates(dfg);
    EXPECT_TRUE(hasCandidate(cands, {0}));
    EXPECT_TRUE(hasCandidate(cands, {0, 1}));
    EXPECT_TRUE(hasCandidate(cands, {1, 2}));
    EXPECT_TRUE(hasCandidate(cands, {0, 1, 2}));
    // {0, 2} is not connected without 1.
    EXPECT_FALSE(hasCandidate(cands, {0, 2}));
}

TEST(IseIdent, NoDuplicates)
{
    Assembler a("d");
    a.add(t2, t0, t1);
    a.add(t3, t2, t0);
    a.add(t4, t3, t2);
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog));
    std::set<std::vector<int>> seen;
    for (const auto &c : cands)
        EXPECT_TRUE(seen.insert(c.nodes).second) << "duplicate";
}

TEST(IseIdent, InputLimitEnforced)
{
    // A 5-input tree must be rejected as a whole.
    Assembler a("io");
    a.add(t5, t0, t1);  // n0: 2 inputs
    a.add(t6, t2, t3);  // n1: 2 inputs
    a.add(t7, t5, t6);  // n2
    a.add(t8, t7, t4);  // n3: 5th input
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog));
    EXPECT_TRUE(hasCandidate(cands, {0, 1, 2}));
    EXPECT_FALSE(hasCandidate(cands, {0, 1, 2, 3}));
}

TEST(IseIdent, OutputLimitEnforced)
{
    // Three values all live out: any candidate bundling all three
    // producers violates the 2-output constraint.
    Assembler a("o");
    a.add(t1, t0, t0); // n0
    a.add(t2, t1, t0); // n1
    a.add(t3, t1, t2); // n2
    a.sw(t1, s0, 0);
    a.sw(t2, s0, 4);
    a.sw(t3, s0, 8);
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog));
    EXPECT_FALSE(hasCandidate(cands, {0, 1, 2}));
    EXPECT_TRUE(hasCandidate(cands, {0, 1}));
}

TEST(IseIdent, SinkingBlockedByInterveningReader)
{
    // A non-includable reader (send) between producer and consumer
    // forbids sinking the producer past it.
    Assembler a("s");
    a.add(t1, t0, t0);  // n0
    a.send(t1, t2, 0);  // n1: reads t1, not includable
    a.add(t3, t1, t0);  // n2
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog));
    EXPECT_FALSE(hasCandidate(cands, {0, 2}));
    EXPECT_TRUE(hasCandidate(cands, {0}));
    EXPECT_TRUE(hasCandidate(cands, {2}));
}

TEST(IseIdent, SinkingBlockedByMemoryOrdering)
{
    // A cached store between two SPM ops does not conflict (separate
    // spaces), but a second SPM store does.
    Assembler a("m");
    a.lw(t1, s2, 0);  // n0: SPM load
    a.sw(t0, s2, 0);  // n1: SPM store to the same space
    a.add(t3, t1, t0); // n2
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog, {s2}));
    // {n0, n2} would sink the load past the store: illegal.
    EXPECT_FALSE(hasCandidate(cands, {0, 2}));
}

TEST(IseIdent, CachedAndSpmSpacesAreIndependent)
{
    Assembler a("m2");
    a.lw(t1, s2, 0); // n0: SPM load
    a.sw(t0, t4, 0); // n1: cached store (not includable)
    a.add(t3, t1, t0); // n2
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog, {s2}));
    EXPECT_TRUE(hasCandidate(cands, {0, 2}));
}

TEST(IseIdent, BaselineCyclesCountMulAsFour)
{
    Assembler a("b");
    a.mul(t1, t0, t0);
    a.add(t2, t1, t0);
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog));
    for (const auto &c : cands) {
        if (c.nodes == std::vector<int>{0, 1}) {
            EXPECT_EQ(c.baselineCycles, 5u);
        }
    }
}

TEST(IseIdent, ExternalsAreDeduplicated)
{
    Assembler a("e");
    a.add(t1, t0, t0); // same register twice: one external
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog));
    ASSERT_TRUE(hasCandidate(cands, {0}));
    for (const auto &c : cands) {
        if (c.nodes == std::vector<int>{0}) {
            EXPECT_EQ(c.externals.size(), 1u);
        }
    }
}

TEST(IseIdent, MaterializationsCountNonZeroImmediates)
{
    Assembler a("i");
    a.addi(t1, t0, 5);
    a.addi(t2, t1, 0);
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog));
    for (const auto &c : cands) {
        if (c.nodes == std::vector<int>{0}) {
            EXPECT_EQ(c.materializations, 1);
        }
        if (c.nodes == std::vector<int>{1}) {
            EXPECT_EQ(c.materializations, 0); // imm 0 rides r0
        }
    }
}

TEST(IseIdent, SizeCapRespected)
{
    Assembler a("cap");
    for (int i = 0; i < 12; ++i)
        a.add(t1, t1, t0);
    a.halt();
    auto prog = a.finish();
    IseIdentParams params;
    params.maxNodes = 3;
    auto cands = identifyCandidates(dfgOf(prog), params);
    for (const auto &c : cands)
        EXPECT_LE(c.nodes.size(), 3u);
}

TEST(IseIdent, CandidateCapGuardsExplosion)
{
    Assembler a("big");
    for (int i = 0; i < 30; ++i)
        a.add(t1, t1, t0);
    a.halt();
    auto prog = a.finish();
    IseIdentParams params;
    params.maxCandidates = 50;
    auto cands = identifyCandidates(dfgOf(prog), params);
    EXPECT_LE(cands.size(), 50u);
}

TEST(IseIdent, StoreOnlyCandidateHasNoOutputs)
{
    Assembler a("so");
    a.add(t1, s2, t0);
    a.sw(t2, t1, 0);
    a.halt();
    auto prog = a.finish();
    auto cands = identifyCandidates(dfgOf(prog, {s2}));
    ASSERT_TRUE(hasCandidate(cands, {0, 1}));
    for (const auto &c : cands) {
        if (c.nodes == std::vector<int>{0, 1}) {
            EXPECT_TRUE(c.outputs.empty());
        }
    }
}

} // namespace
} // namespace stitch::compiler

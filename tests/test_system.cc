/** @file Multi-tile system tests: scheduling, messaging, fused
 *  execution through the preset sNoC. */

#include <gtest/gtest.h>

#include "compiler/rewriter.hh"
#include "isa/assembler.hh"
#include "mem/addrmap.hh"
#include "sim/system.hh"

namespace stitch::sim
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

compiler::RewrittenProgram
wrap(isa::Program prog)
{
    compiler::RewrittenProgram binary;
    binary.program = std::move(prog);
    return binary;
}

TEST(System, PingPong)
{
    SystemParams params;
    params.accel = AccelMode::None;
    System system(params);

    Assembler a("ping");
    a.li(t0, 42);
    a.li(t1, 1); // partner tile
    a.send(t0, t1, 0);
    a.recv(t2, t1, 0);
    a.li(t3, 0x2000);
    a.sw(t2, t3, 0);
    a.halt();

    Assembler b("pong");
    b.li(t1, 0);
    b.recv(t2, t1, 0);
    b.addi(t2, t2, 1);
    b.send(t2, t1, 0);
    b.halt();

    system.loadProgram(0, wrap(a.finish()));
    system.loadProgram(1, wrap(b.finish()));
    auto stats = system.run();
    EXPECT_EQ(system.memoryAt(0).backing().readWord(0x2000), 43u);
    EXPECT_EQ(stats.messages, 2u);
    EXPECT_GT(stats.makespan, 0u);
}

TEST(System, SixteenTileRing)
{
    SystemParams params;
    params.accel = AccelMode::None;
    System system(params);

    for (TileId t = 0; t < numTiles; ++t) {
        Assembler a("ring");
        if (t == 0) {
            a.li(t0, 1);
            a.li(t1, 1);
            a.send(t0, t1, 0); // kick off
            a.li(t1, 15);
            a.recv(t2, t1, 0); // wait for the token to return
        } else {
            a.li(t1, t - 1);
            a.recv(t2, t1, 0);
            a.addi(t2, t2, 1);
            a.li(t1, (t + 1) % numTiles);
            a.send(t2, t1, 0);
        }
        a.li(t3, 0x2000);
        a.sw(t2, t3, 0);
        a.halt();
        system.loadProgram(t, wrap(a.finish()));
    }
    system.run();
    // The token accumulated one increment per hop.
    EXPECT_EQ(system.memoryAt(0).backing().readWord(0x2000), 16u);
}

TEST(System, PerTileStatsAccumulate)
{
    SystemParams params;
    params.accel = AccelMode::None;
    System system(params);
    Assembler a("w");
    for (int i = 0; i < 10; ++i)
        a.addi(t0, t0, 1);
    a.halt();
    system.loadProgram(3, wrap(a.finish()));
    auto stats = system.run();
    EXPECT_TRUE(stats.perTile[3].loaded);
    EXPECT_FALSE(stats.perTile[0].loaded);
    EXPECT_EQ(stats.perTile[3].instructions, 11u);
    EXPECT_EQ(stats.perTile[3].cycles, stats.makespan);
    EXPECT_DOUBLE_EQ(stats.perTile[3].utilization(stats.makespan),
                     1.0);
    EXPECT_EQ(stats.instructions, 11u);
}

TEST(System, DeadlockIsDetected)
{
    SystemParams params;
    params.accel = AccelMode::None;
    System system(params);
    Assembler a("d0");
    a.li(t1, 1);
    a.recv(t2, t1, 0);
    a.halt();
    Assembler b("d1");
    b.li(t1, 0);
    b.recv(t2, t1, 0);
    b.halt();
    system.loadProgram(0, wrap(a.finish()));
    system.loadProgram(1, wrap(b.finish()));
    auto stats = system.run();
    EXPECT_EQ(stats.termination, fault::Termination::Deadlock);
    ASSERT_EQ(stats.blockedTiles.size(), 2u);
    EXPECT_EQ(stats.blockedTiles[0].tile, 0);
    EXPECT_EQ(stats.blockedTiles[0].waitingSrc, 1);
    EXPECT_EQ(stats.blockedTiles[1].tile, 1);
    EXPECT_EQ(stats.blockedTiles[1].waitingSrc, 0);
}

TEST(System, ConservativeTimingOrdersMessages)
{
    // A slow producer and a fast consumer: the consumer's final time
    // must include the wait.
    SystemParams params;
    params.accel = AccelMode::None;
    System system(params);

    Assembler slow("slow");
    auto loop = slow.newLabel();
    slow.li(t0, 0);
    slow.li(t1, 1000);
    slow.bind(loop);
    slow.addi(t0, t0, 1);
    slow.blt(t0, t1, loop);
    slow.li(t1, 1);
    slow.send(t0, t1, 0);
    slow.halt();

    Assembler fast("fast");
    fast.li(t1, 0);
    fast.recv(t2, t1, 0);
    fast.halt();

    system.loadProgram(0, wrap(slow.finish()));
    system.loadProgram(1, wrap(fast.finish()));
    system.run();
    EXPECT_GT(system.coreAt(1).time(), 2000u);
    EXPECT_EQ(system.coreAt(1).reg(t2), 1000u);
}

TEST(System, CustOnBaselineIsFatal)
{
    SystemParams params;
    params.accel = AccelMode::None;
    System system(params);
    Assembler a("c");
    isa::Instr cust;
    cust.op = isa::Opcode::Cust;
    a.emit(cust);
    a.halt();
    auto prog = a.finish();
    prog.addIseConfig(0);
    system.loadProgram(0, wrap(std::move(prog)));
    EXPECT_THROW(system.run(), FatalError);
}

TEST(System, StitchExecutesLocalCust)
{
    SystemParams params;
    params.accel = AccelMode::Stitch;
    System system(params);

    // Tile 0 hosts {AT-MA}: run a mul-add custom instruction.
    core::FusedConfig cfg;
    cfg.localKind = core::PatchKind::ATMA;
    cfg.local.a1op = core::AluOp::Pass;
    cfg.local.u1Lhs = core::U1Lhs::In1;
    cfg.local.u1Rhs = core::U1Rhs::In2;
    cfg.local.u2Lhs = core::U2Lhs::U1Out;
    cfg.local.u2Rhs = core::U2Rhs::In3;
    cfg.local.aop2 = core::AluOp::Add;
    cfg.local.outCfg = core::OutCfg::S2;

    Assembler a("cust");
    a.li(t0, 6);
    a.li(t1, 7);
    a.li(t2, 100);
    isa::Instr cust;
    cust.op = isa::Opcode::Cust;
    cust.rd0 = t4;
    cust.rs0 = zero;
    cust.rs1 = t0;
    cust.rs2 = t1;
    cust.rs3 = t2;
    cust.cfg = 0;
    a.emit(cust);
    a.halt();
    auto prog = a.finish();
    prog.addIseConfig(cfg.packBlob());

    system.loadProgram(0, wrap(std::move(prog)));
    system.run();
    EXPECT_EQ(system.coreAt(0).reg(t4), 6u * 7u + 100u);
}

TEST(System, KindMismatchIsFatal)
{
    SystemParams params;
    System system(params); // Stitch
    core::FusedConfig cfg;
    cfg.localKind = core::PatchKind::ATAS; // tile 0 is ATMA
    Assembler a("mm");
    isa::Instr cust;
    cust.op = isa::Opcode::Cust;
    cust.cfg = 0;
    a.emit(cust);
    a.halt();
    auto prog = a.finish();
    prog.addIseConfig(cfg.packBlob());
    system.loadProgram(0, wrap(std::move(prog)));
    EXPECT_THROW(system.run(), FatalError);
}

TEST(System, FusedCustNeedsAPartner)
{
    System system(SystemParams{});
    core::FusedConfig cfg;
    cfg.localKind = core::PatchKind::ATMA;
    cfg.usesRemote = true;
    cfg.remoteKind = core::PatchKind::ATAS;
    Assembler a("f");
    isa::Instr cust;
    cust.op = isa::Opcode::Cust;
    cust.cfg = 0;
    a.emit(cust);
    a.halt();
    auto prog = a.finish();
    prog.addIseConfig(cfg.packBlob());
    system.loadProgram(0, wrap(std::move(prog)));
    EXPECT_THROW(system.run(), FatalError); // no partner set
}

TEST(System, FusedCustExecutesThroughPartner)
{
    System system(SystemParams{});
    // Tile 0 {AT-MA} fused with tile 1 {AT-AS}: (in1*in2) >> in3.
    core::FusedConfig cfg;
    cfg.localKind = core::PatchKind::ATMA;
    cfg.local.a1op = core::AluOp::Pass;
    cfg.local.u1Lhs = core::U1Lhs::In1;
    cfg.local.u1Rhs = core::U1Rhs::In2;
    cfg.local.u2Lhs = core::U2Lhs::U1Out;
    cfg.local.u2Rhs = core::U2Rhs::In3;
    cfg.local.aop2 = core::AluOp::Pass;
    cfg.local.outCfg = core::OutCfg::S2;
    cfg.usesRemote = true;
    cfg.remoteKind = core::PatchKind::ATAS;
    cfg.remote.a1op = core::AluOp::Pass; // s1 = F
    cfg.remote.u1Lhs = core::U1Lhs::S1Out;
    cfg.remote.aop2 = core::AluOp::Pass;
    cfg.remote.u2Lhs = core::U2Lhs::U1Out;
    cfg.remote.u2Rhs = core::U2Rhs::In3;
    cfg.remote.sop = core::ShiftOp::Srl;
    cfg.remote.outCfg = core::OutCfg::S2;

    Assembler a("ff");
    a.li(t0, 40);
    a.li(t1, 12);
    a.li(t2, 4);
    isa::Instr cust;
    cust.op = isa::Opcode::Cust;
    cust.rd0 = t5;
    cust.rs0 = zero;
    cust.rs1 = t0;
    cust.rs2 = t1;
    cust.rs3 = t2;
    cust.cfg = 0;
    a.emit(cust);
    a.halt();
    auto prog = a.finish();
    prog.addIseConfig(cfg.packBlob());

    core::SnocConfig snoc;
    ASSERT_TRUE(snoc.addFusion(0, core::PatchKind::ATMA, 1,
                               core::PatchKind::ATAS));
    system.configureSnoc(snoc);
    system.loadProgram(0, wrap(std::move(prog)));
    system.setFusionPartner(0, 1);
    system.run();
    EXPECT_EQ(system.coreAt(0).reg(t5), (40u * 12u) >> 4);
}

TEST(System, ConfigureSnocWritesCrossbarRegisters)
{
    System system(SystemParams{});
    core::SnocConfig snoc;
    ASSERT_TRUE(snoc.addFusion(1, core::PatchKind::ATAS, 9,
                               core::PatchKind::ATAS));
    system.configureSnoc(snoc);
    auto regs = snoc.packRegisters();
    // Spot check: the bypass tile's register landed via the
    // memory-mapped store path.
    EXPECT_EQ(system.coreAt(5).xbarConfigReg(), regs[5]);
}

TEST(System, LocusModeRunsLocusBinaries)
{
    SystemParams params;
    params.accel = AccelMode::Locus;
    System system(params);

    core::MicroDfg dfg;
    dfg.ops.push_back({core::MicroOp::Kind::Alu, core::AluOp::Add,
                       core::ShiftOp::Pass, core::microPortRef(0),
                       core::microPortRef(1)});
    dfg.rd0Op = 0;

    Assembler a("l");
    a.li(t0, 30);
    a.li(t1, 12);
    isa::Instr cust;
    cust.op = isa::Opcode::Cust;
    cust.rd0 = t5;
    cust.rs0 = t0;
    cust.rs1 = t1;
    cust.cfg = 0;
    a.emit(cust);
    a.halt();
    auto prog = a.finish();
    prog.addIseConfig(0);

    compiler::RewrittenProgram binary;
    binary.program = std::move(prog);
    binary.microTable.push_back(dfg);
    system.loadProgram(0, binary);
    system.run();
    EXPECT_EQ(system.coreAt(0).reg(t5), 42u);
}

TEST(System, LocusBinaryOnStitchSystemIsFatal)
{
    System system(SystemParams{});
    compiler::RewrittenProgram binary;
    Assembler a("x");
    a.halt();
    binary.program = a.finish();
    binary.microTable.push_back({});
    EXPECT_THROW(system.loadProgram(0, binary), FatalError);
}

} // namespace
} // namespace stitch::sim

/** @file Memory-system tests: sparse store, cache model, tile memory. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "mem/addrmap.hh"
#include "mem/cache.hh"
#include "mem/sparse_memory.hh"
#include "mem/tile_memory.hh"

namespace stitch::mem
{
namespace
{

TEST(SparseMemory, ZeroFilledOnFirstTouch)
{
    SparseMemory m;
    EXPECT_EQ(m.readWord(0x1234), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(SparseMemory, WordRoundTrip)
{
    SparseMemory m;
    m.writeWord(0x1000, 0xcafebabe);
    EXPECT_EQ(m.readWord(0x1000), 0xcafebabeu);
    EXPECT_EQ(m.readByte(0x1000), 0xbe); // little endian
    EXPECT_EQ(m.readByte(0x1003), 0xca);
}

TEST(SparseMemory, CrossPageWord)
{
    SparseMemory m;
    Addr a = SparseMemory::pageBytes - 2;
    m.writeWord(a, 0x11223344);
    EXPECT_EQ(m.readWord(a), 0x11223344u);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(SparseMemory, BlockWrite)
{
    SparseMemory m;
    m.writeBlock(0x42, {1, 2, 3, 4, 5});
    EXPECT_EQ(m.readByte(0x42), 1);
    EXPECT_EQ(m.readByte(0x46), 5);
}

TEST(Cache, GeometryChecks)
{
    Cache c(CacheParams{4096, 2, 64});
    EXPECT_EQ(c.numSets(), 32u);
    EXPECT_DEATH(Cache(CacheParams{4096, 2, 48}),
                 "power of two");
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(CacheParams{4096, 2, 64});
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13c, false).hit); // same 64B block
    EXPECT_FALSE(c.access(0x140, false).hit); // next block
}

TEST(Cache, LruEviction)
{
    CacheParams params{4096, 2, 64};
    Cache c(params);
    // Three blocks mapping to set 0: stride = numSets * block = 2048.
    Addr a = 0, b = 2048, d = 4096;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);        // a most recent
    c.access(d, false);        // evicts b (LRU)
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(CacheParams{4096, 2, 64});
    c.access(0, true); // dirty
    c.access(2048, false);
    auto res = c.access(4096, false); // evicts dirty block 0
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(c.stats().get("writebacks"), 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c(CacheParams{4096, 2, 64});
    c.access(0, false);
    c.access(2048, false);
    EXPECT_FALSE(c.access(4096, false).writeback);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(CacheParams{4096, 2, 64});
    c.access(0x40, true);
    c.flush();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.access(0x40, false).hit);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(CacheParams{4096, 2, 64});
    c.access(0, false);
    c.access(2048, false);
    // Many probes of the LRU way must not refresh it.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(c.probe(0));
    c.access(4096, false);
    EXPECT_FALSE(c.probe(0)); // 0 was still LRU
}

/** Property: the number of distinct blocks never exceeds capacity. */
TEST(Cache, OccupancyNeverExceedsCapacity)
{
    CacheParams params{1024, 2, 64};
    Cache c(params);
    Rng rng(3);
    std::uint64_t hits = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        Addr a = static_cast<Addr>(rng.range(0, 65535)) & ~63u;
        auto res = c.access(a, rng.range(0, 1) == 1);
        hits += res.hit ? 1 : 0;
        ++total;
    }
    EXPECT_EQ(c.stats().get("hits"), hits);
    EXPECT_EQ(c.stats().get("reads") + c.stats().get("writes"), total);
    // Working set of 1024 blocks vs 16-block cache: mostly misses.
    EXPECT_LT(hits, total / 2);
}

TEST(AddrMap, Routing)
{
    EXPECT_TRUE(isSpmAddr(spmBase));
    EXPECT_TRUE(isSpmAddr(spmBase + spmSize - 1));
    EXPECT_FALSE(isSpmAddr(spmBase + spmSize));
    EXPECT_FALSE(isSpmAddr(0));
    EXPECT_TRUE(isDramAddr(0));
    EXPECT_TRUE(isXbarConfigAddr(xbarConfigAddr));
}

TEST(TileMemory, SpmIsSingleCycle)
{
    TileMemory m;
    EXPECT_EQ(m.storeWord(spmBase + 16, 0x55), 0u);
    auto res = m.loadWord(spmBase + 16);
    EXPECT_EQ(res.value, 0x55u);
    EXPECT_EQ(res.extraCycles, 0u); // 1-cycle = base instruction cost
}

TEST(TileMemory, DramMissCostsThirtyCycles)
{
    TileMemory m;
    auto res = m.loadWord(0x4000);
    EXPECT_EQ(res.extraCycles, 30u);
    res = m.loadWord(0x4000);
    EXPECT_EQ(res.extraCycles, 0u); // now cached
}

TEST(TileMemory, DirtyEvictionAddsWritebackLatency)
{
    TileMemory m;
    // D-cache: 4 KB, 2-way, 64 B -> set stride 2048.
    m.storeWord(0x0, 1);  // miss (30)
    m.loadWord(0x800);    // miss
    auto extra = m.loadWord(0x1000).extraCycles; // evict dirty 0x0
    EXPECT_EQ(extra, 60u); // fill + writeback
}

TEST(TileMemory, FetchStraddlesBlocks)
{
    TileMemory m;
    // Word address 15 -> bytes 0x1003c..0x10043: straddles 64B line.
    EXPECT_EQ(m.fetch(15, 2), 60u); // two cold lines
    EXPECT_EQ(m.fetch(15, 2), 0u);  // both now resident
}

TEST(TileMemory, ByteAccessSignExtends)
{
    TileMemory m;
    m.storeByte(0x2000, 0x80);
    auto res = m.loadByte(0x2000);
    EXPECT_EQ(res.value, 0xffffff80u);
}

TEST(TileMemory, SpmByteOps)
{
    TileMemory m;
    m.storeByte(spmBase + 5, 0xff);
    EXPECT_EQ(m.loadByte(spmBase + 5).value, 0xffffffffu);
}

TEST(TileMemory, SpmPeekPoke)
{
    TileMemory m;
    m.spmPoke(8, 0xdead);
    EXPECT_EQ(m.spmPeek(8), 0xdeadu);
    EXPECT_EQ(m.spmLoadWord(spmBase + 8), 0xdeadu);
}

TEST(TileMemory, UnmappedAccessIsFatal)
{
    TileMemory m;
    EXPECT_THROW(m.loadWord(0xa0000000u), FatalError);
    EXPECT_THROW(m.storeWord(0xa0000000u, 0), FatalError);
}

TEST(TileMemory, SpmOutOfRangeIsAFatalError)
{
    // A typed error, not a process abort: corrupted addresses can
    // reach the SPM port under fault injection, and the scheduler
    // turns FatalError into a Termination::Fault run outcome.
    TileMemory m;
    EXPECT_THROW(m.spmLoadWord(spmBase + spmSize), FatalError);
}

TEST(TileMemory, NoSpmConfiguration)
{
    MemParams params;
    params.hasSpm = false;
    TileMemory m(params);
    EXPECT_DEATH(m.spmLoadWord(spmBase), "without an SPM");
}

TEST(TileMemory, FlushPreservesMemoryContents)
{
    TileMemory m;
    m.storeWord(0x3000, 77);
    m.flushCaches();
    auto res = m.loadWord(0x3000);
    EXPECT_EQ(res.value, 77u);
    EXPECT_EQ(res.extraCycles, 30u); // cold again
}

} // namespace
} // namespace stitch::mem

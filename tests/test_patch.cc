/** @file Polymorphic-patch datapath and control-word tests. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/patch.hh"
#include "mem/addrmap.hh"

namespace stitch::core
{
namespace
{

/** Simple in-memory SPM for patch tests. */
class VectorSpm : public SpmPort
{
  public:
    Word
    load(Addr a) override
    {
        return data[(a - mem::spmBase) / 4];
    }

    void
    store(Addr a, Word v) override
    {
        data[(a - mem::spmBase) / 4] = v;
    }

    std::array<Word, 64> data{};
};

TEST(PatchCtl, PacksToExactly19Bits)
{
    EXPECT_EQ(PatchCtl::ctlBits, 19);
    PatchCtl ctl;
    EXPECT_LT(ctl.pack(), 1u << 19);
}

TEST(PatchCtl, RoundTripRandomized)
{
    Rng rng(5);
    for (int iter = 0; iter < 500; ++iter) {
        PatchCtl ctl;
        ctl.a1op = static_cast<AluOp>(rng.range(0, 7));
        ctl.tMode = static_cast<TMode>(rng.range(0, 2));
        ctl.u1Lhs = static_cast<U1Lhs>(rng.range(0, 3));
        ctl.u1Rhs = static_cast<U1Rhs>(rng.range(0, 3));
        ctl.u2Lhs = static_cast<U2Lhs>(rng.range(0, 1));
        ctl.u2Rhs = static_cast<U2Rhs>(rng.range(0, 3));
        ctl.aop2 = static_cast<AluOp>(rng.range(0, 7));
        ctl.sop = static_cast<ShiftOp>(rng.range(0, 3));
        ctl.outCfg = static_cast<OutCfg>(rng.range(0, 3));
        EXPECT_EQ(PatchCtl::unpack(ctl.pack()), ctl);
    }
}

TEST(FusedConfig, BlobRoundTrip)
{
    Rng rng(6);
    for (int iter = 0; iter < 200; ++iter) {
        FusedConfig cfg;
        cfg.localKind = static_cast<PatchKind>(rng.range(0, 2));
        cfg.local = PatchCtl::unpack(
            static_cast<std::uint32_t>(rng.range(0, (1 << 19) - 1)));
        cfg.usesRemote = rng.range(0, 1) == 1;
        if (cfg.usesRemote) {
            cfg.remoteKind = static_cast<PatchKind>(rng.range(0, 2));
            cfg.remote = PatchCtl::unpack(static_cast<std::uint32_t>(
                rng.range(0, (1 << 19) - 1)));
            cfg.writeLocalToRd1 = rng.range(0, 1) == 1;
        }
        // Guard against enum values outside their field range from
        // the raw unpack above.
        auto blob = cfg.packBlob();
        EXPECT_EQ(FusedConfig::unpackBlob(blob), cfg);
    }
}

TEST(FusedConfig, LinkControlBits)
{
    FusedConfig cfg;
    EXPECT_EQ(cfg.linkControlBits(), 19);
    cfg.usesRemote = true;
    EXPECT_EQ(cfg.linkControlBits(), 38);
}

TEST(PatchTemplate, StageClasses)
{
    auto atma = patchTemplate(PatchKind::ATMA);
    EXPECT_EQ(atma.stage1[0], OpClass::A);
    EXPECT_EQ(atma.stage1[1], OpClass::T);
    EXPECT_EQ(atma.stage2[0], OpClass::M);
    EXPECT_EQ(atma.stage2[1], OpClass::A);
    EXPECT_EQ(patchTemplate(PatchKind::ATAS).stage2[0], OpClass::A);
    EXPECT_EQ(patchTemplate(PatchKind::ATAS).stage2[1], OpClass::S);
    EXPECT_EQ(patchTemplate(PatchKind::ATSA).stage2[0], OpClass::S);
}

TEST(AluEval, AllOps)
{
    EXPECT_EQ(aluEval(AluOp::Add, 5, 3), 8u);
    EXPECT_EQ(aluEval(AluOp::Sub, 5, 3), 2u);
    EXPECT_EQ(aluEval(AluOp::And, 6, 3), 2u);
    EXPECT_EQ(aluEval(AluOp::Or, 6, 3), 7u);
    EXPECT_EQ(aluEval(AluOp::Xor, 6, 3), 5u);
    EXPECT_EQ(aluEval(AluOp::Slt, static_cast<Word>(-1), 0), 1u);
    EXPECT_EQ(aluEval(AluOp::Sltu, static_cast<Word>(-1), 0), 0u);
    EXPECT_EQ(aluEval(AluOp::Pass, 9, 1), 9u);
}

TEST(ShiftEval, AllOps)
{
    EXPECT_EQ(shiftEval(ShiftOp::Sll, 1, 4), 16u);
    EXPECT_EQ(shiftEval(ShiftOp::Srl, 0x80000000u, 31), 1u);
    EXPECT_EQ(shiftEval(ShiftOp::Sra, 0x80000000u, 31), 0xffffffffu);
    EXPECT_EQ(shiftEval(ShiftOp::Pass, 7, 3), 7u);
    EXPECT_EQ(shiftEval(ShiftOp::Sll, 1, 33), 2u); // amount & 31
}

/** {AT}: a1 = in0 + in1, LMAU loads SPM[a1]. */
TEST(PatchExec, AtLoadChain)
{
    VectorSpm spm;
    spm.data[5] = 777;
    PatchCtl ctl;
    ctl.a1op = AluOp::Add;
    ctl.tMode = TMode::Load;
    ctl.outCfg = OutCfg::S1;
    std::array<Word, 4> in = {mem::spmBase, 20, 0, 0};
    auto res = patchExecute(PatchKind::ATMA, ctl, in, spm);
    EXPECT_TRUE(res.didLoad);
    EXPECT_EQ(res.s1, 777u);
}

/** {AT} store: SPM[in0+in1] = in2. */
TEST(PatchExec, AtStoreChain)
{
    VectorSpm spm;
    PatchCtl ctl;
    ctl.a1op = AluOp::Add;
    ctl.tMode = TMode::Store;
    ctl.outCfg = OutCfg::None;
    std::array<Word, 4> in = {mem::spmBase, 8, 4242, 0};
    auto res = patchExecute(PatchKind::ATSA, ctl, in, spm);
    EXPECT_TRUE(res.didStore);
    EXPECT_EQ(spm.data[2], 4242u);
}

/** {MA}: mul then add on the AT-MA patch. */
TEST(PatchExec, MulAddChain)
{
    NullSpmPort spm;
    PatchCtl ctl;
    ctl.a1op = AluOp::Pass; // s1out = in0
    ctl.tMode = TMode::Off;
    ctl.u1Lhs = U1Lhs::In1; // mul(in1, in2)
    ctl.u1Rhs = U1Rhs::In2;
    ctl.u2Lhs = U2Lhs::U1Out;
    ctl.u2Rhs = U2Rhs::In3; // + in3
    ctl.aop2 = AluOp::Add;
    ctl.outCfg = OutCfg::S2;
    std::array<Word, 4> in = {0, 6, 7, 100};
    auto res = patchExecute(PatchKind::ATMA, ctl, in, spm);
    EXPECT_EQ(res.s2, 6u * 7u + 100u);
}

/** {AS}: add then shift on the AT-AS patch. */
TEST(PatchExec, AddShiftChain)
{
    NullSpmPort spm;
    PatchCtl ctl;
    ctl.u1Lhs = U1Lhs::In1;
    ctl.u1Rhs = U1Rhs::In2;
    ctl.aop2 = AluOp::Add;
    ctl.u2Lhs = U2Lhs::U1Out;
    ctl.u2Rhs = U2Rhs::In3;
    ctl.sop = ShiftOp::Srl;
    ctl.outCfg = OutCfg::S2;
    std::array<Word, 4> in = {0, 40, 24, 3};
    auto res = patchExecute(PatchKind::ATAS, ctl, in, spm);
    EXPECT_EQ(res.s2, (40u + 24u) >> 3);
}

/** {SA}: shift then add on the AT-SA patch. */
TEST(PatchExec, ShiftAddChain)
{
    NullSpmPort spm;
    PatchCtl ctl;
    ctl.u1Lhs = U1Lhs::In1;
    ctl.u1Rhs = U1Rhs::In2;
    ctl.sop = ShiftOp::Sll;
    ctl.u2Lhs = U2Lhs::U1Out;
    ctl.u2Rhs = U2Rhs::In3;
    ctl.aop2 = AluOp::Add;
    ctl.outCfg = OutCfg::S2;
    std::array<Word, 4> in = {0, 3, 2, 5};
    auto res = patchExecute(PatchKind::ATSA, ctl, in, spm);
    EXPECT_EQ(res.s2, (3u << 2) + 5u);
}

/** The {AA} intermediate connection: stage-1 ALU feeds stage-2 ALU
 *  directly via the S1Out bypass (paper Section III-A). */
TEST(PatchExec, AaChainViaBypass)
{
    NullSpmPort spm;
    PatchCtl ctl;
    ctl.a1op = AluOp::Add; // in0 + in1
    ctl.tMode = TMode::Off;
    ctl.u2Lhs = U2Lhs::S1Out;
    ctl.u2Rhs = U2Rhs::In2;
    ctl.aop2 = AluOp::Xor;
    ctl.outCfg = OutCfg::S2;
    std::array<Word, 4> in = {0xf0, 0x0f, 0xff, 0};
    auto res = patchExecute(PatchKind::ATMA, ctl, in, spm);
    EXPECT_EQ(res.s2, (0xf0u + 0x0fu) ^ 0xffu);
}

TEST(PatchExec, BothOutputs)
{
    VectorSpm spm;
    spm.data[0] = 50;
    FusedConfig cfg;
    cfg.localKind = PatchKind::ATMA;
    cfg.local.a1op = AluOp::Pass;
    cfg.local.tMode = TMode::Load; // s1 = SPM[in0]
    cfg.local.u1Lhs = U1Lhs::S1Out;
    cfg.local.u1Rhs = U1Rhs::In1; // mul(s1, in1)
    cfg.local.u2Lhs = U2Lhs::U1Out;
    cfg.local.u2Rhs = U2Rhs::In2;
    cfg.local.aop2 = AluOp::Add;
    cfg.local.outCfg = OutCfg::Both;
    std::array<Word, 4> in = {mem::spmBase, 3, 4, 0};
    auto res = executeCustom(cfg, in, spm, nullptr);
    EXPECT_TRUE(res.writeRd0);
    EXPECT_TRUE(res.writeRd1);
    EXPECT_EQ(res.rd0, 50u * 3u + 4u); // stage 2
    EXPECT_EQ(res.rd1, 50u);           // stage 1
}

/** Fused execution: local result flows to the remote patch's in0. */
TEST(PatchExec, FusedForwarding)
{
    VectorSpm spm;
    spm.data[3] = 21;
    FusedConfig cfg;
    cfg.usesRemote = true;
    cfg.localKind = PatchKind::ATMA;
    cfg.local.a1op = AluOp::Add; // address in0+in1
    cfg.local.tMode = TMode::Load;
    cfg.local.outCfg = OutCfg::S1; // forward the loaded value
    cfg.remoteKind = PatchKind::ATAS;
    cfg.remote.a1op = AluOp::Pass; // s1out = F
    cfg.remote.u1Lhs = U1Lhs::S1Out;
    cfg.remote.u1Rhs = U1Rhs::In2; // F + in2
    cfg.remote.aop2 = AluOp::Add;
    cfg.remote.u2Lhs = U2Lhs::U1Out;
    cfg.remote.u2Rhs = U2Rhs::In3; // << in3
    cfg.remote.sop = ShiftOp::Sll;
    cfg.remote.outCfg = OutCfg::S2;

    NullSpmPort remoteSpm;
    std::array<Word, 4> in = {mem::spmBase, 12, 9, 1};
    auto res = executeCustom(cfg, in, spm, &remoteSpm);
    EXPECT_TRUE(res.writeRd0);
    EXPECT_EQ(res.rd0, (21u + 9u) << 1);
    EXPECT_FALSE(res.writeRd1);
}

TEST(PatchExec, FusedWriteLocalToRd1)
{
    VectorSpm spm;
    NullSpmPort remoteSpm;
    FusedConfig cfg;
    cfg.usesRemote = true;
    cfg.localKind = PatchKind::ATAS;
    cfg.local.a1op = AluOp::Add;
    cfg.local.tMode = TMode::Off;
    cfg.local.outCfg = OutCfg::S1;
    cfg.remoteKind = PatchKind::ATSA;
    cfg.remote.a1op = AluOp::Pass;
    cfg.remote.outCfg = OutCfg::S1;
    cfg.writeLocalToRd1 = true;
    std::array<Word, 4> in = {30, 12, 0, 0};
    auto res = executeCustom(cfg, in, spm, &remoteSpm);
    EXPECT_TRUE(res.writeRd1);
    EXPECT_EQ(res.rd1, 42u);
    EXPECT_EQ(res.rd0, 42u); // remote passed it through
}

TEST(PatchExec, FusedWithoutRemoteSpmPortPanics)
{
    VectorSpm spm;
    FusedConfig cfg;
    cfg.usesRemote = true;
    std::array<Word, 4> in = {};
    EXPECT_DEATH(executeCustom(cfg, in, spm, nullptr), "remote");
}

TEST(PatchExec, NullSpmPortRejectsAccess)
{
    NullSpmPort spm;
    PatchCtl ctl;
    ctl.tMode = TMode::Load;
    std::array<Word, 4> in = {};
    EXPECT_THROW(patchExecute(PatchKind::ATMA, ctl, in, spm),
                 FatalError);
}

TEST(PatchKindNames, Stable)
{
    EXPECT_STREQ(patchKindName(PatchKind::ATMA), "AT-MA");
    EXPECT_STREQ(patchKindName(PatchKind::ATAS), "AT-AS");
    EXPECT_STREQ(patchKindName(PatchKind::ATSA), "AT-SA");
}

} // namespace
} // namespace stitch::core

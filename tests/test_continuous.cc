/**
 * @file
 * Continuous-telemetry tests: the sample/window/ring algebra
 * (deltas, shard merges), the SLO engine's multi-window burn-rate
 * alerting (a stall must alert within two windows), the Prometheus
 * exposition contract, the flight recorder's black-box artifacts,
 * and the whole stack wired through a live JobEngine — including
 * the "scrape" introspection verb and the collector-off
 * byte-identity guarantee.
 */

#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "obs/buildinfo.hh"
#include "svc/engine.hh"
#include "svc/server.hh"
#include "telem/exposition.hh"
#include "telem/flightrec.hh"
#include "telem/slo.hh"
#include "telem/timeseries.hh"

namespace stitch::telem
{
namespace
{

/** A cumulative sample with one of everything. */
MetricSample
sampleAt(std::uint64_t atUs, std::uint64_t completed,
         std::uint64_t failed, double depth,
         std::vector<std::uint64_t> e2eValuesUs = {})
{
    MetricSample s;
    s.atUs = atUs;
    s.counters.emplace_back("jobs_completed", completed);
    s.counters.emplace_back("jobs_failed", failed);
    s.gauges.emplace_back("queue_depth", depth);
    Histogram e2e;
    for (std::uint64_t v : e2eValuesUs)
        e2e.record(v);
    s.histograms.emplace_back("e2e", e2e);
    return s;
}

// ---------------------------------------------------------------- //
// Windows

TEST(Window, DeltaOfConsecutiveSamples)
{
    const MetricSample t0 =
        sampleAt(1'000'000, 10, 1, 3.0, {100, 200});
    const MetricSample t1 =
        sampleAt(2'000'000, 15, 1, 5.0, {100, 200, 900, 900, 900});

    const Window w = windowBetween(t0, t1);
    EXPECT_EQ(w.counter("jobs_completed"), 5u); // increment
    EXPECT_EQ(w.counter("jobs_failed"), 0u);
    EXPECT_DOUBLE_EQ(w.gauge("queue_depth"), 5.0); // end value
    EXPECT_DOUBLE_EQ(w.durationS(), 1.0);
    EXPECT_DOUBLE_EQ(w.rate("jobs_completed"), 5.0);
    // The histogram delta holds exactly the three new samples.
    ASSERT_NE(w.histogram("e2e"), nullptr);
    EXPECT_EQ(w.histogram("e2e")->count(), 3u);
    EXPECT_EQ(w.histogram("e2e")->quantile(0.5), 900u);
}

TEST(Window, ShardMergeAddsCountersAndUnionsTime)
{
    Window a = windowBetween(sampleAt(0, 0, 0, 1.0),
                             sampleAt(1'000'000, 4, 1, 1.0, {50}));
    const Window b =
        windowBetween(sampleAt(500'000, 0, 0, 2.0),
                      sampleAt(2'000'000, 6, 0, 2.0, {70, 90}));
    a.merge(b);
    EXPECT_EQ(a.counter("jobs_completed"), 10u);
    EXPECT_EQ(a.counter("jobs_failed"), 1u);
    EXPECT_DOUBLE_EQ(a.gauge("queue_depth"), 3.0); // sum over shards
    EXPECT_EQ(a.startUs, 0u);
    EXPECT_EQ(a.endUs, 2'000'000u);
    EXPECT_EQ(a.histogram("e2e")->count(), 3u);
}

TEST(TimeSeries, RingEvictsOldestAndCountsTotal)
{
    TimeSeries series(3);
    for (std::uint64_t i = 0; i < 5; ++i) {
        Window w;
        w.seq = i;
        series.push(w);
    }
    EXPECT_EQ(series.size(), 3u);
    EXPECT_EQ(series.totalWindows(), 5u);
    const std::vector<Window> kept = series.snapshot();
    EXPECT_EQ(kept.front().seq, 2u);
    EXPECT_EQ(kept.back().seq, 4u);
}

TEST(TimeSeries, MergeAlignsBySequenceNumber)
{
    TimeSeries mine(8), theirs(8);
    for (std::uint64_t i = 0; i < 3; ++i) {
        Window w = windowBetween(
            sampleAt(i * 1'000'000, i * 10, 0, 1.0),
            sampleAt((i + 1) * 1'000'000, (i + 1) * 10, 0, 1.0));
        w.seq = i;
        mine.push(w);
        if (i > 0) // the other shard missed window 0
            theirs.push(w);
    }
    mine.merge(theirs);
    const std::vector<Window> merged = mine.snapshot();
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].counter("jobs_completed"), 10u); // unmatched
    EXPECT_EQ(merged[1].counter("jobs_completed"), 20u); // doubled
    EXPECT_EQ(merged[2].counter("jobs_completed"), 20u);
}

TEST(Collector, SyntheticSamplerClosesWindowsOnTick)
{
    std::uint64_t fakeClock = 0;
    std::uint64_t completed = 0;
    Collector collector(
        [&] {
            fakeClock += 1'000'000;
            completed += 7;
            return sampleAt(fakeClock, completed, 0, 1.0);
        },
        /*intervalMs=*/60'000, /*capacity=*/4);
    collector.start(); // takes the baseline sample
    collector.tick();
    collector.tick();
    collector.stop();
    EXPECT_GE(collector.series().totalWindows(), 2u);
    const std::vector<Window> windows =
        collector.series().snapshot();
    // Every closed window saw exactly one sampler step.
    for (const Window &w : windows)
        EXPECT_EQ(w.counter("jobs_completed"), 7u);
    // Sequence numbers are dense from zero.
    EXPECT_EQ(windows.front().seq, 0u);
}

// ---------------------------------------------------------------- //
// SLO burn-rate

SloObjective
errorBudgetObjective()
{
    SloObjective o;
    o.name = "error_rate";
    o.metric = "error_rate";
    o.op = SloObjective::Op::Le;
    o.target = 0.01;
    return o; // defaults: budget 0.1, short 2, long 12, 5x/1x
}

Window
windowWithErrorRate(std::uint64_t completed, std::uint64_t failed)
{
    static std::uint64_t clock = 0;
    const Window w = windowBetween(
        sampleAt(clock, 0, 0, 0.0),
        sampleAt(clock + 1'000'000, completed, failed, 0.0));
    clock += 1'000'000;
    return w;
}

TEST(SloEngine, AlertsWithinTwoBadWindows)
{
    SloConfig config;
    config.objectives.push_back(errorBudgetObjective());
    SloEngine slo(config);

    // Healthy traffic: no violations, no burn.
    for (int i = 0; i < 4; ++i)
        slo.observe(windowWithErrorRate(100, 0));
    EXPECT_EQ(slo.violations(), 0u);
    EXPECT_EQ(slo.alertsActive(), 0u);

    // The injected stall: every job in the window fails. One bad
    // window out of the short span of 2 burns 0.5/0.1 = 5x — the
    // acceptance criterion is an alert within two windows.
    slo.observe(windowWithErrorRate(10, 10));
    EXPECT_GE(slo.violations(), 1u);
    slo.observe(windowWithErrorRate(10, 10));
    EXPECT_EQ(slo.alertsActive(), 1u);
    EXPECT_GE(slo.alertsRaised(), 1u);

    // Recovery clears the alert once the short window drains.
    for (int i = 0; i < 3; ++i)
        slo.observe(windowWithErrorRate(100, 0));
    EXPECT_EQ(slo.alertsActive(), 0u);

    const obs::Json status = slo.statusJson();
    ASSERT_EQ(status.size(), 1u);
    EXPECT_EQ(status.at(0).get("name").asString(), "error_rate");
    EXPECT_TRUE(status.at(0).has("burn_short"));
    EXPECT_TRUE(status.at(0).get("history").isArray());
}

TEST(SloEngine, SignallessWindowsAreSkippedNotScored)
{
    SloConfig config;
    config.objectives.push_back(errorBudgetObjective());
    SloEngine slo(config);
    // An idle daemon: windows with zero finished jobs carry no
    // error-rate signal and must neither violate nor heal.
    for (int i = 0; i < 5; ++i)
        slo.observe(windowWithErrorRate(0, 0));
    EXPECT_EQ(slo.violations(), 0u);
    const obs::Json status = slo.statusJson();
    EXPECT_FALSE(status.at(0).get("value_valid").asBool());
    EXPECT_EQ(status.at(0).get("windows").asUint(), 0u);
}

TEST(SloConfig, RoundTripsAndValidates)
{
    const SloConfig defaults = SloConfig::defaults();
    EXPECT_EQ(defaults.objectives.size(), 3u);
    const SloConfig reparsed =
        SloConfig::fromJson(defaults.toJson());
    EXPECT_EQ(reparsed.objectives.size(), 3u);
    EXPECT_EQ(reparsed.toJson().dump(), defaults.toJson().dump());

    obs::Json bad = defaults.toJson();
    bad.set("schema", "not-slo");
    EXPECT_THROW(SloConfig::fromJson(bad), fault::ConfigError);

    SloObjective o = errorBudgetObjective();
    o.metric = "no_such_metric";
    EXPECT_THROW(o.validate(), fault::ConfigError);
    o = errorBudgetObjective();
    o.budget = 0.0;
    EXPECT_THROW(o.validate(), fault::ConfigError);
}

// ---------------------------------------------------------------- //
// Exposition

TEST(Exposition, EmitsWellFormedSeries)
{
    const MetricSample sample =
        sampleAt(1'000'000, 42, 3, 2.0, {100, 5000, 250'000});
    ExpositionExtras extras;
    extras.uptimeS = 12.5;
    extras.served = 99;
    const obs::Json build = obs::buildInfoJson();
    extras.buildInfo = &build;
    const std::string text = prometheusText(sample, extras);

    EXPECT_NE(text.find("stitch_jobs_completed_total 42\n"),
              std::string::npos);
    EXPECT_NE(text.find("stitch_jobs_failed_total 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("stitch_queue_depth 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("stitch_uptime_seconds 12.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("stitch_requests_served_total 99\n"),
              std::string::npos);
    // Histogram: cumulative buckets, +Inf closes at the count.
    EXPECT_NE(text.find("stitch_latency_e2e_ms_bucket{le=\"+Inf\"} "
                        "3\n"),
              std::string::npos);
    EXPECT_NE(text.find("stitch_latency_e2e_ms_count 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE stitch_latency_e2e_ms histogram"),
              std::string::npos);
    // Build info rides along as the conventional info metric.
    EXPECT_NE(text.find("stitch_build_info{"), std::string::npos);

    // Every sample line is NAME{labels}? SP VALUE; counting them
    // matches the helper CI uses.
    std::size_t lines = 0, samples = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lines;
        if (line.empty() || line[0] == '#')
            continue;
        ++samples;
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_TRUE(line.rfind("stitch_", 0) == 0) << line;
    }
    EXPECT_EQ(samples, expositionSeriesCount(text));
    EXPECT_GT(lines, samples); // headers present
}

TEST(Exposition, BucketCountsAreCumulative)
{
    MetricSample sample;
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.record(10);
    for (int i = 0; i < 5; ++i)
        h.record(1'000'000);
    sample.histograms.emplace_back("queue", h);
    const std::string text = prometheusText(sample);

    // Two non-empty buckets: the first carries 10, the second must
    // read 15 (cumulative), and +Inf equals the total count.
    EXPECT_NE(text.find("} 10\n"), std::string::npos);
    EXPECT_NE(text.find("} 15\n"), std::string::npos);
    EXPECT_NE(
        text.find("stitch_latency_queue_ms_bucket{le=\"+Inf\"} 15"),
        std::string::npos);
}

// ---------------------------------------------------------------- //
// Flight recorder

TEST(FlightRecorder, DumpsTypedFailureAsJsonl)
{
    FlightOptions options;
    options.dumpDir = ::testing::TempDir() + "stitch_flight_t1";
    FlightRecorder rec(options);

    rec.attach(0xabc, 7);
    rec.event(0xabc, 100, "submitted", "priority 0");
    rec.event(0xabc, 200, "claimed", "worker 0");
    Span span;
    span.traceId = 0xabc;
    span.jobId = 7;
    span.stage = Stage::Queue;
    span.startUs = 100;
    span.endUs = 200;
    rec.span(span);

    const obs::Json build = obs::buildInfoJson();
    const std::string path =
        rec.dump(0xabc, "deadline", "watchdog tripped", &build);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(rec.dumps(), 1u);

    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const obs::Json head = obs::Json::parse(line);
    EXPECT_EQ(head.get("schema").asString(), flightRecordSchema);
    EXPECT_EQ(head.get("kind").asString(), "deadline");
    EXPECT_EQ(head.get("job").asUint(), 7u);
    EXPECT_EQ(head.get("events").asUint(), 3u);
    EXPECT_TRUE(head.has("build"));

    std::vector<obs::Json> events;
    while (std::getline(in, line))
        events.push_back(obs::Json::parse(line));
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].get("type").asString(), "state");
    EXPECT_EQ(events[0].get("what").asString(), "submitted");
    EXPECT_EQ(events[2].get("type").asString(), "span");
    EXPECT_EQ(events[2].get("stage").asString(), "queue");
    EXPECT_EQ(events[2].get("dur_us").asUint(), 100u);

    // Dumping forgets: a second dump of the same trace is a no-op.
    EXPECT_EQ(rec.dump(0xabc, "deadline", "again"), "");
}

TEST(FlightRecorder, RingsAreBoundedAndForgetIsClean)
{
    FlightOptions options;
    options.eventsPerJob = 4;
    options.maxJobs = 2;
    options.dumpDir = ::testing::TempDir() + "stitch_flight_t2";
    FlightRecorder rec(options);

    rec.attach(1, 0);
    for (int i = 0; i < 10; ++i)
        rec.event(1, static_cast<std::uint64_t>(i), "tick");
    // Oldest events dropped but counted.
    const std::string path = rec.dump(1, "sim", "boom");
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const obs::Json head = obs::Json::parse(line);
    EXPECT_EQ(head.get("events").asUint(), 4u);
    EXPECT_EQ(head.get("events_dropped").asUint(), 6u);

    // maxJobs bounds concurrent rings: the oldest attach is evicted.
    rec.attach(10, 1);
    rec.attach(11, 2);
    rec.attach(12, 3);
    EXPECT_EQ(rec.statsJson().get("tracked").asUint(), 2u);
    EXPECT_GE(rec.statsJson().get("evicted").asUint(), 1u);

    // forget() leaves nothing to dump.
    rec.forget(12);
    EXPECT_EQ(rec.dump(12, "sim", "gone"), "");
}

} // namespace
} // namespace stitch::telem

// ---------------------------------------------------------------- //
// The stack wired through a live engine

namespace stitch::svc
{
namespace
{

JobSpec
cheapSpec(int samplesLong = 2)
{
    JobSpec spec;
    spec.app = "APP1-gesture";
    spec.mode = apps::AppMode::Baseline;
    spec.samplesShort = 1;
    spec.samplesLong = samplesLong;
    return spec;
}

TEST(ContinuousEngine, SnapshotMatchesServiceReportCounters)
{
    EngineOptions options;
    options.telemetry = true;
    JobEngine engine(options);
    engine.submit(cheapSpec());
    engine.submit(cheapSpec()); // duplicate: cache hit
    engine.run();

    const telem::MetricSample sample = engine.metricsSnapshot();
    const obs::Json report = engine.serviceReportJson();
    const obs::Json &jobs =
        report.get("counters").get("svc").get("jobs");
    // The scrape names map 1:1 onto the report counter tree.
    EXPECT_EQ(sample.counter("jobs_submitted"),
              jobs.get("submitted").asUint());
    EXPECT_EQ(sample.counter("jobs_completed"),
              jobs.get("completed").asUint());
    EXPECT_EQ(sample.counter("jobs_cache_hits"),
              jobs.get("cache_hits").asUint());
    ASSERT_NE(sample.histogram("e2e"), nullptr);
    EXPECT_EQ(sample.histogram("e2e")->count(), 2u);

    // v3 report carries provenance.
    ASSERT_TRUE(report.has("build"));
    EXPECT_TRUE(report.get("build").has("git"));
    EXPECT_TRUE(report.get("build").has("compiler"));
}

TEST(ContinuousEngine, CollectorAndSloRideTheEngine)
{
    EngineOptions options;
    options.telemetry = true;
    // A huge interval: the timer never fires during the test; the
    // constructor's baseline sample plus the destructor's stop keep
    // the thread lifecycle honest, and windows close via the
    // collector's own clock only if the test outlives the interval
    // (it doesn't).
    options.metricsIntervalMs = 3'600'000;
    options.slo = telem::SloConfig::defaults();
    JobEngine engine(options);

    ASSERT_NE(engine.collector(), nullptr);
    ASSERT_NE(engine.slo(), nullptr);
    engine.submit(cheapSpec());
    engine.run();

    const obs::Json report = engine.serviceReportJson();
    ASSERT_TRUE(report.has("slo"));
    EXPECT_EQ(report.get("slo").get("objectives").size(), 3u);
    ASSERT_TRUE(report.has("series"));
    EXPECT_TRUE(report.get("series").has("capacity"));

    const std::string text = engine.expositionText(1.0, 2);
    EXPECT_GE(telem::expositionSeriesCount(text), 30u);
    EXPECT_NE(text.find("stitch_slo_burn_rate_short"),
              std::string::npos);
}

TEST(ContinuousEngine, TypedFailureDumpsAFlightRecord)
{
    EngineOptions options;
    options.flightRecorder = true;
    options.flightDir =
        ::testing::TempDir() + "stitch_flight_engine";
    options.chaos = ServiceFaultPlan::workerThrows(1.0, 42);
    JobEngine engine(options);

    const int id = engine.submit(cheapSpec());
    engine.run();
    ASSERT_EQ(engine.result(id).status, JobResult::Status::Failed);
    EXPECT_EQ(engine.result(id).errorKind, "injected");
    ASSERT_NE(engine.flightRecorder(), nullptr);
    EXPECT_EQ(engine.flightRecorder()->dumps(), 1u);

    const std::string path =
        options.flightDir + "/flight-" +
        telem::traceIdHex(engine.result(id).traceId) + ".jsonl";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const obs::Json head = obs::Json::parse(line);
    EXPECT_EQ(head.get("kind").asString(), "injected");
    EXPECT_EQ(head.get("job").asUint(),
              static_cast<std::uint64_t>(id));
    // The ring holds the full life of the job: submit, claim, the
    // injected throw and the terminal failure all made it in.
    std::vector<std::string> whats;
    while (std::getline(in, line)) {
        const obs::Json e = obs::Json::parse(line);
        if (e.get("type").asString() == "state")
            whats.push_back(e.get("what").asString());
    }
    auto saw = [&](const char *what) {
        for (const std::string &w : whats)
            if (w == what)
                return true;
        return false;
    };
    EXPECT_TRUE(saw("submitted"));
    EXPECT_TRUE(saw("claimed"));
    EXPECT_TRUE(saw("injected_throw"));
    EXPECT_TRUE(saw("failed"));
}

TEST(ContinuousEngine, HealthyJobsLeaveNoFlightRecords)
{
    EngineOptions options;
    options.flightRecorder = true;
    options.flightDir =
        ::testing::TempDir() + "stitch_flight_healthy";
    JobEngine engine(options);
    engine.submit(cheapSpec());
    engine.run();
    EXPECT_EQ(engine.flightRecorder()->dumps(), 0u);
    EXPECT_EQ(
        engine.flightRecorder()->statsJson().get("tracked").asUint(),
        0u); // forgotten on completion, not leaked
}

TEST(ContinuousEngine, ScrapeVerbAnswersExposition)
{
    EngineOptions options;
    options.telemetry = true;
    options.slo = telem::SloConfig::defaults();
    JobEngine engine(options);
    engine.submit(cheapSpec());
    engine.run();

    const obs::Json doc =
        introspectionResponse(engine, "scrape", 3.5, 8);
    EXPECT_EQ(doc.get("schema").asString(), "stitchd-scrape");
    EXPECT_EQ(doc.get("content_type").asString(),
              telem::expositionContentType);
    const std::string text = doc.get("exposition").asString();
    EXPECT_GE(telem::expositionSeriesCount(text), 30u);
    EXPECT_NE(text.find("stitch_jobs_completed_total 1"),
              std::string::npos);
    EXPECT_NE(text.find("stitch_uptime_seconds 3.5"),
              std::string::npos);
    EXPECT_NE(text.find("stitch_build_info{"), std::string::npos);

    // healthz now carries provenance too.
    const obs::Json healthz =
        introspectionResponse(engine, "healthz", 3.5, 8);
    EXPECT_TRUE(healthz.has("build"));
}

TEST(ContinuousEngine, CollectorOffKeepsReportsByteIdentical)
{
    // The batch guarantee: with the continuous layer dark (the
    // default), run reports are byte-identical to an engine that
    // never heard of it. Provenance lives in the *service* report
    // only, never in a job's run report.
    EngineOptions plain;
    JobEngine a(plain);
    const int ja = a.submit(cheapSpec());
    a.run();

    EngineOptions armed;
    armed.metricsIntervalMs = 3'600'000;
    armed.slo = telem::SloConfig::defaults();
    armed.flightRecorder = true;
    JobEngine b(armed);
    const int jb = b.submit(cheapSpec());
    b.run();

    EXPECT_EQ(a.result(ja).report.dump(2),
              b.result(jb).report.dump(2));
    EXPECT_EQ(a.result(ja).derived.dump(2),
              b.result(jb).derived.dump(2));
}

TEST(ContinuousEngine, ProtocolFailuresGetSyntheticBlackBoxes)
{
    EngineOptions options;
    options.flightRecorder = true;
    options.flightDir =
        ::testing::TempDir() + "stitch_flight_proto";
    JobEngine engine(options);
    engine.recordProtocolFailure("torn frame from 127.0.0.1");
    engine.recordProtocolFailure("garbage length prefix");
    EXPECT_EQ(engine.flightRecorder()->dumps(), 2u);
}

} // namespace
} // namespace stitch::svc

/** @file Compiler-scheduled inter-patch NoC tests. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/arch.hh"
#include "core/snoc.hh"

namespace stitch::core
{
namespace
{

TEST(SnocPorts, Opposites)
{
    EXPECT_EQ(oppositePort(SnocPort::North), SnocPort::South);
    EXPECT_EQ(oppositePort(SnocPort::East), SnocPort::West);
    EXPECT_EQ(oppositePort(SnocPort::South), SnocPort::North);
    EXPECT_EQ(oppositePort(SnocPort::West), SnocPort::East);
}

TEST(SnocPorts, MeshNeighbours)
{
    EXPECT_EQ(neighbourOf(0, SnocPort::East), 1);
    EXPECT_EQ(neighbourOf(0, SnocPort::South), 4);
    EXPECT_EQ(neighbourOf(0, SnocPort::North), -1);
    EXPECT_EQ(neighbourOf(0, SnocPort::West), -1);
    EXPECT_EQ(neighbourOf(15, SnocPort::East), -1);
    EXPECT_EQ(neighbourOf(5, SnocPort::North), 1);
}

TEST(SnocPorts, DirectionTo)
{
    EXPECT_EQ(directionTo(5, 6), SnocPort::East);
    EXPECT_EQ(directionTo(6, 5), SnocPort::West);
    EXPECT_EQ(directionTo(1, 5), SnocPort::South);
    EXPECT_EQ(directionTo(5, 1), SnocPort::North);
    EXPECT_DEATH(directionTo(0, 2), "not adjacent");
}

TEST(SwitchConfig, SingleDriverPerOutput)
{
    SwitchConfig sw;
    EXPECT_TRUE(sw.outputFree(SnocPort::East));
    sw.connect(SnocPort::Patch, SnocPort::East);
    EXPECT_FALSE(sw.outputFree(SnocPort::East));
    EXPECT_EQ(sw.driverOf(SnocPort::East), SnocPort::Patch);
    // Reconnecting the same pair is idempotent.
    sw.connect(SnocPort::Patch, SnocPort::East);
    // A different driver is contention.
    EXPECT_THROW(sw.connect(SnocPort::North, SnocPort::East),
                 FatalError);
}

TEST(SwitchConfig, RegisterRoundTrip)
{
    Rng rng(17);
    for (int iter = 0; iter < 100; ++iter) {
        SwitchConfig sw;
        for (int out = 0; out < numSnocPorts; ++out) {
            if (rng.range(0, 1) == 0)
                continue;
            sw.connect(static_cast<SnocPort>(rng.range(0, 5)),
                       static_cast<SnocPort>(out));
        }
        EXPECT_EQ(SwitchConfig::unpackRegister(sw.packRegister()), sw);
    }
}

TEST(SnocConfig, StraightLinePath)
{
    SnocConfig snoc;
    // Paper Figure 5: patch_2 to patch_10 through patch_6's bypass
    // (0-based tiles 1 -> 9 via 5).
    auto path = snoc.addPath(1, SnocPort::Patch, 9, SnocPort::Patch);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->hops(), 2);
    EXPECT_EQ(path->tiles, (std::vector<TileId>{1, 5, 9}));
    // The bypass tile's switch connects North input to South output.
    EXPECT_EQ(snoc.switchAt(5).driverOf(SnocPort::South),
              SnocPort::North);
    EXPECT_EQ(snoc.switchAt(9).driverOf(SnocPort::Patch),
              SnocPort::North);
    std::string why;
    EXPECT_TRUE(snoc.validate(&why)) << why;
}

TEST(SnocConfig, LocalPath)
{
    SnocConfig snoc;
    auto path = snoc.addPath(3, SnocPort::Patch, 3, SnocPort::Reg);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->hops(), 0);
    EXPECT_EQ(snoc.switchAt(3).driverOf(SnocPort::Reg),
              SnocPort::Patch);
    EXPECT_TRUE(snoc.validate());
}

TEST(SnocConfig, RoutesAroundOccupiedLinks)
{
    SnocConfig snoc;
    // Occupy the direct 1 -> 5 link.
    ASSERT_TRUE(snoc.addPath(1, SnocPort::Patch, 5, SnocPort::Patch));
    // 1 -> 9 can no longer go straight down; it must detour but
    // still arrive.
    auto path = snoc.addPath(1, SnocPort::Reg, 9, SnocPort::Reg);
    ASSERT_TRUE(path.has_value());
    EXPECT_GE(path->hops(), 2);
    EXPECT_TRUE(snoc.validate());
}

TEST(SnocConfig, FailsCleanlyWhenDestinationPortTaken)
{
    SnocConfig snoc;
    ASSERT_TRUE(snoc.addPath(0, SnocPort::Patch, 2, SnocPort::Patch));
    auto before = snoc.packRegisters();
    EXPECT_FALSE(snoc.addPath(3, SnocPort::Patch, 2, SnocPort::Patch));
    EXPECT_EQ(snoc.packRegisters(), before); // unchanged on failure
}

TEST(SnocConfig, AddFusionCreatesBothDirections)
{
    SnocConfig snoc;
    auto routed = snoc.addFusion(1, PatchKind::ATAS, 9,
                                 PatchKind::ATAS);
    ASSERT_TRUE(routed.has_value());
    EXPECT_EQ(routed->first.from, 1);
    EXPECT_EQ(routed->first.to, 9);
    EXPECT_EQ(routed->second.from, 9);
    EXPECT_EQ(routed->second.to, 1);
    EXPECT_EQ(routed->second.exit, SnocPort::Reg);
    EXPECT_TRUE(snoc.validate());
}

TEST(SnocConfig, FusionRespectsHopLimit)
{
    SnocConfig snoc;
    // Tiles 0 and 15 are 6 hops apart: a 12-hop round trip breaks
    // both the six-hop rule and the clock budget.
    EXPECT_FALSE(snoc.addFusion(0, PatchKind::ATMA, 15,
                                PatchKind::ATMA));
    // Failure must leave no residue.
    EXPECT_EQ(snoc.paths().size(), 0u);
    auto regs = snoc.packRegisters();
    for (auto r : regs)
        EXPECT_EQ(SwitchConfig::unpackRegister(r), SwitchConfig{});
}

TEST(SnocConfig, FusionAtMaxDistanceWorks)
{
    SnocConfig snoc;
    // Distance 3 => 3 + 3 hops, exactly the paper's worst case.
    auto routed = snoc.addFusion(0, PatchKind::ATMA, 3,
                                 PatchKind::ATAS);
    ASSERT_TRUE(routed.has_value());
    EXPECT_EQ(routed->first.hops() + routed->second.hops(), 6);
}

TEST(SnocConfig, ManyFusionsStayValid)
{
    SnocConfig snoc;
    auto arch = StitchArch::standard();
    int routed = 0;
    // Stitch neighbouring pairs row by row: (0,1), (2,3), ...
    for (TileId t = 0; t < numTiles; t += 2) {
        if (snoc.addFusion(t, arch.kindOf(t), t + 1,
                           arch.kindOf(t + 1)))
            ++routed;
    }
    EXPECT_EQ(routed, 8);
    std::string why;
    EXPECT_TRUE(snoc.validate(&why)) << why;
    EXPECT_EQ(snoc.paths().size(), 16u);
}

TEST(SnocConfig, ClearResets)
{
    SnocConfig snoc;
    ASSERT_TRUE(snoc.addFusion(1, PatchKind::ATAS, 9,
                               PatchKind::ATAS));
    snoc.clear();
    EXPECT_TRUE(snoc.paths().empty());
    EXPECT_TRUE(snoc.validate());
}

TEST(StitchArchTest, StandardPlacementMatchesPaperMix)
{
    auto arch = StitchArch::standard();
    EXPECT_EQ(arch.countOf(PatchKind::ATMA), 8);
    EXPECT_EQ(arch.countOf(PatchKind::ATAS), 4);
    EXPECT_EQ(arch.countOf(PatchKind::ATSA), 4);
    // The paper's worked example: patch_2 and patch_10 (1-based) are
    // both {AT-AS} with patch_6 between them.
    EXPECT_EQ(arch.kindOf(1), PatchKind::ATAS);
    EXPECT_EQ(arch.kindOf(9), PatchKind::ATAS);
    EXPECT_EQ(arch.tilesOf(PatchKind::ATSA).size(), 4u);
}

TEST(StitchArchTest, EveryNonMaTileHasAnMaNeighbour)
{
    auto arch = StitchArch::standard();
    for (TileId t = 0; t < numTiles; ++t) {
        if (arch.kindOf(t) == PatchKind::ATMA)
            continue;
        bool hasMa = false;
        for (auto d : {SnocPort::North, SnocPort::East,
                       SnocPort::South, SnocPort::West}) {
            TileId n = neighbourOf(t, d);
            if (n >= 0 && arch.kindOf(n) == PatchKind::ATMA)
                hasMa = true;
        }
        EXPECT_TRUE(hasMa) << "tile " << t;
    }
}

} // namespace
} // namespace stitch::core

/**
 * @file
 * Telemetry-layer tests: the log-linear histogram against a
 * sorted-vector oracle (quantile error bounded by one bucket, merge
 * associativity, edge cases), trace-id uniqueness, span-tree
 * well-formedness over a real engine batch, the disabled-telemetry
 * byte-identity guarantee, the span exports, and the introspection
 * documents (pure-function and over the wire).
 */

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "svc/engine.hh"
#include "svc/server.hh"
#include "telem/histogram.hh"
#include "telem/span.hh"

namespace stitch::telem
{
namespace
{

/** Deterministic sample stream (no std::random in tests). */
std::uint64_t
nextSample(std::uint64_t &state)
{
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
}

/** Oracle: exact order statistic at quantile q (rank ceil(q*n)). */
std::uint64_t
oracleQuantile(std::vector<std::uint64_t> sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end());
    if (q <= 0.0)
        return sorted.front();
    if (q >= 1.0)
        return sorted.back();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

// ---------------------------------------------------------------- //
// Histogram geometry

TEST(Histogram, BucketBoundsPartitionTheDomain)
{
    // Every bucket's [lo, hi) must be non-empty, contiguous with its
    // neighbor, and round-trip through bucketIndex.
    for (int i = 0; i < Histogram::numBuckets - 1; ++i) {
        const std::uint64_t lo = Histogram::bucketLo(i);
        const std::uint64_t hi = Histogram::bucketHi(i);
        ASSERT_LT(lo, hi) << "bucket " << i;
        ASSERT_EQ(hi, Histogram::bucketLo(i + 1)) << "bucket " << i;
        ASSERT_EQ(Histogram::bucketIndex(lo), i);
        ASSERT_EQ(Histogram::bucketIndex(hi - 1), i);
    }
    EXPECT_EQ(Histogram::bucketIndex(0), 0);
    EXPECT_EQ(Histogram::bucketIndex(~0ull),
              Histogram::numBuckets - 1);
}

TEST(Histogram, RelativeBucketWidthIsBounded)
{
    // Above the linear range a bucket spans at most lo/16 — the
    // 6.25% relative-error contract the quantiles inherit.
    for (int i = static_cast<int>(Histogram::linearMax);
         i < Histogram::numBuckets - 1; ++i) {
        const double lo =
            static_cast<double>(Histogram::bucketLo(i));
        const double width = static_cast<double>(
            Histogram::bucketHi(i) - Histogram::bucketLo(i));
        ASSERT_LE(width / lo,
                  1.0 / Histogram::subPerOctave + 1e-12)
            << "bucket " << i;
    }
}

// ---------------------------------------------------------------- //
// Histogram quantiles vs the oracle

TEST(Histogram, QuantilesLandInTheOracleBucket)
{
    Histogram hist;
    std::vector<std::uint64_t> samples;
    std::uint64_t state = 42;
    for (int i = 0; i < 10000; ++i) {
        // Mix magnitudes: sub-linear, mid, and large values.
        const std::uint64_t v =
            nextSample(state) % (i % 3 == 0 ? 20ull
                                 : i % 3 == 1 ? 100000ull
                                              : 3000000000ull);
        samples.push_back(v);
        hist.record(v);
    }
    EXPECT_EQ(hist.count(), samples.size());
    for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
        const std::uint64_t oracle = oracleQuantile(samples, q);
        const std::uint64_t got = hist.quantile(q);
        // The reported value must sit in the same bucket as the true
        // order statistic and never under-report it.
        EXPECT_EQ(Histogram::bucketIndex(got),
                  Histogram::bucketIndex(oracle))
            << "q=" << q;
        EXPECT_GE(got, oracle) << "q=" << q;
    }
    // The extremes are tracked exactly, not bucket-rounded.
    EXPECT_EQ(hist.quantile(1.0), oracleQuantile(samples, 1.0));
    EXPECT_EQ(hist.min(), oracleQuantile(samples, 0.0));
}

TEST(Histogram, SingleValueCollapsesEveryQuantile)
{
    Histogram hist;
    for (int i = 0; i < 100; ++i)
        hist.record(777);
    for (double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(hist.quantile(q), 777u) << "q=" << q;
    EXPECT_EQ(hist.min(), 777u);
    EXPECT_EQ(hist.max(), 777u);
    EXPECT_DOUBLE_EQ(hist.mean(), 777.0);
    EXPECT_EQ(hist.nonEmptyBuckets(), 1);
}

TEST(Histogram, EmptyHistogramIsAllZero)
{
    Histogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.quantile(0.5), 0u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 0u);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(Histogram, MergeIsAssociativeAndOrderBlind)
{
    std::uint64_t state = 7;
    Histogram parts[3];
    Histogram all;
    for (int p = 0; p < 3; ++p)
        for (int i = 0; i < 1000; ++i) {
            const std::uint64_t v =
                nextSample(state) % (1ull << (10 + 8 * p));
            parts[p].record(v);
            all.record(v);
        }

    // (a + b) + c
    Histogram left = parts[0];
    left.merge(parts[1]);
    left.merge(parts[2]);
    // a + (b + c)
    Histogram right = parts[1];
    right.merge(parts[2]);
    Histogram rightOuter = parts[0];
    rightOuter.merge(right);

    EXPECT_EQ(left.toJson().dump(), rightOuter.toJson().dump());
    // Merging partials is indistinguishable from recording the
    // union stream directly.
    EXPECT_EQ(left.toJson().dump(), all.toJson().dump());
    EXPECT_EQ(left.count(), 3000u);
}

TEST(Histogram, MergingAnEmptyHistogramIsIdentity)
{
    Histogram hist, empty;
    hist.record(5);
    hist.record(123456);
    const std::string before = hist.toJson().dump();
    hist.merge(empty);
    EXPECT_EQ(hist.toJson().dump(), before);
}

TEST(Histogram, MergeIdentityHoldsInBothDirections)
{
    // The other direction of the identity: folding a populated
    // histogram *into* an empty one must be indistinguishable from
    // the populated one itself — min/max must come across, not be
    // clobbered by the empty side's sentinels.
    Histogram hist;
    hist.record(5);
    hist.record(123456);
    Histogram empty;
    empty.merge(hist);
    EXPECT_EQ(empty.toJson().dump(), hist.toJson().dump());
    EXPECT_EQ(empty.min(), 5u);
    EXPECT_EQ(empty.max(), 123456u);

    // And merging two empties stays empty (all-zero summary).
    Histogram a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.quantile(0.5), 0u);
}

TEST(Histogram, EmptyQuantileIsZeroForEveryQ)
{
    // Regression pin: quantile() on an empty histogram is 0 at every
    // q, including the 0.0/1.0 edges — never a read of the ~0 min
    // sentinel or a scan past the last bucket.
    Histogram hist;
    for (double q : {0.0, 0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_EQ(hist.quantile(q), 0u) << "q=" << q;
}

TEST(Histogram, DiffFromRecoversTheIncrement)
{
    // The window algebra: cumulative snapshot at t0, more samples,
    // snapshot at t1 — diffFrom must reproduce exactly the samples
    // recorded in between.
    std::uint64_t state = 99;
    Histogram cumulative, incrementOracle;
    for (int i = 0; i < 500; ++i)
        cumulative.record(nextSample(state) % 100000);
    const Histogram earlier = cumulative;
    for (int i = 0; i < 300; ++i) {
        const std::uint64_t v = nextSample(state) % 100000;
        cumulative.record(v);
        incrementOracle.record(v);
    }

    const Histogram delta = cumulative.diffFrom(earlier);
    EXPECT_EQ(delta.count(), 300u);
    EXPECT_EQ(delta.sum(), incrementOracle.sum());
    for (double q : {0.5, 0.9, 0.99})
        EXPECT_EQ(delta.quantile(q), incrementOracle.quantile(q))
            << "q=" << q;
    // Bucketed extrema: exact when the cumulative extremum falls in
    // the delta's range, bucket-edge-bounded otherwise.
    EXPECT_LE(delta.min(), incrementOracle.min());
    EXPECT_GE(delta.max(), incrementOracle.max());
}

TEST(Histogram, DiffFromSelfAndFromEmptyAreTheEdgeCases)
{
    Histogram hist;
    hist.record(42);
    hist.record(9000);

    // x - x = empty.
    const Histogram none = hist.diffFrom(hist);
    EXPECT_EQ(none.count(), 0u);
    EXPECT_EQ(none.quantile(0.99), 0u);

    // x - empty = x (count/sum/buckets; min/max are re-derived and
    // tightened by the cumulative extrema, so they are exact here).
    const Histogram all = hist.diffFrom(Histogram());
    EXPECT_EQ(all.count(), 2u);
    EXPECT_EQ(all.sum(), hist.sum());
    EXPECT_EQ(all.min(), 42u);
    EXPECT_EQ(all.max(), 9000u);
}

// ---------------------------------------------------------------- //
// Trace ids

TEST(TraceId, UniqueAcrossAThousandJobs)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(traceIdFor(0xdeadbeef, i));
    EXPECT_EQ(seen.size(), 1000u);
    // Different seeds relabel, never collapse.
    EXPECT_NE(traceIdFor(1, 0), traceIdFor(2, 0));
}

TEST(TraceId, HexIsSixteenDigits)
{
    EXPECT_EQ(traceIdHex(0), "0000000000000000");
    EXPECT_EQ(traceIdHex(0xabcdef0123456789ull),
              "abcdef0123456789");
}

// ---------------------------------------------------------------- //
// Span sink + scoped spans

TEST(SpanSink, ScopedSpanRecordsOnceEvenWhenClosedEarly)
{
    SpanSink sink;
    TraceContext ctx{1, 0, -1, &sink};
    {
        ScopedSpan span(ctx, Stage::Compile);
        span.close();
        span.close(); // idempotent
    }                 // destructor must not double-record
    EXPECT_EQ(sink.count(), 1u);
    EXPECT_EQ(sink.snapshot()[0].stage, Stage::Compile);
}

TEST(SpanSink, DisabledContextRecordsNothing)
{
    TraceContext off;
    EXPECT_FALSE(off.enabled());
    {
        ScopedSpan span(off, Stage::Simulate);
    }
    off.record(Stage::Job, 0, 10); // no sink: must be a no-op
    SUCCEED();
}

} // namespace
} // namespace stitch::telem

namespace stitch::svc
{
namespace
{

/** The cheapest legal spec (shared idiom with test_svc.cc). */
JobSpec
cheapSpec(apps::AppMode mode = apps::AppMode::Baseline,
          int samplesLong = 2)
{
    JobSpec spec;
    spec.app = "APP1-gesture";
    spec.mode = mode;
    spec.samplesShort = 1;
    spec.samplesLong = samplesLong;
    return spec;
}

std::string
scratchFile(const std::string &name)
{
    return ::testing::TempDir() + "stitch_telem_" + name;
}

// ---------------------------------------------------------------- //
// Engine integration

TEST(EngineTelemetry, TraceIdsAreUniquePerBatch)
{
    JobEngine engine;
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        JobSpec spec = cheapSpec();
        spec.priority = i % 7;
        const int id = engine.submit(spec);
        seen.insert(engine.result(id).traceId);
    }
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(EngineTelemetry, SpanTreeIsWellFormed)
{
    EngineOptions options;
    options.telemetry = true;
    JobEngine engine(options);
    const int n = 4;
    for (int i = 0; i < n; ++i) {
        // Distinct specs so every job truly simulates.
        JobSpec spec = cheapSpec(apps::AppMode::Baseline, 2 + i);
        engine.submit(spec);
    }
    engine.run();

    const auto spans = engine.spanSink().snapshot();
    ASSERT_FALSE(spans.empty());
    for (const auto &span : spans) {
        EXPECT_GE(span.endUs, span.startUs); // every span is closed
        EXPECT_GE(span.jobId, 0);
        EXPECT_LT(span.jobId, n);
        EXPECT_NE(span.traceId, 0u);
    }

    for (int id = 0; id < n; ++id) {
        const telem::Span *envelope = nullptr;
        for (const auto &span : spans)
            if (span.jobId == id && span.stage == telem::Stage::Job)
                envelope = &span;
        ASSERT_NE(envelope, nullptr) << "job " << id;
        EXPECT_EQ(envelope->traceId, engine.result(id).traceId);

        std::uint64_t stageSum = 0;
        for (const auto &span : spans) {
            if (span.jobId != id || span.stage == telem::Stage::Job)
                continue;
            if (span.stage == telem::Stage::Submit) {
                // Submit covers validate+enqueue and hands off to
                // the envelope, which starts when the job is queued.
                EXPECT_LE(span.endUs, envelope->startUs);
                continue;
            }
            // Parent starts before (or with) every child, and no
            // child outlives the envelope.
            EXPECT_GE(span.startUs, envelope->startUs)
                << telem::stageName(span.stage);
            EXPECT_LE(span.endUs, envelope->endUs)
                << telem::stageName(span.stage);
            EXPECT_EQ(span.traceId, envelope->traceId);
            if (span.stage == telem::Stage::Compile ||
                span.stage == telem::Stage::Stitch ||
                span.stage == telem::Stage::Simulate ||
                span.stage == telem::Stage::Report ||
                span.stage == telem::Stage::Queue)
                stageSum += span.durationUs();
        }
        // Non-overlapping stages cannot sum past the envelope.
        EXPECT_LE(stageSum, envelope->durationUs()) << "job " << id;
    }
}

TEST(EngineTelemetry, DisabledTelemetryIsByteIdentical)
{
    JobEngine quiet;          // telemetry off (default)
    EngineOptions withTelem;
    withTelem.telemetry = true;
    JobEngine loud(withTelem);

    const int a = quiet.submit(cheapSpec());
    const int b = loud.submit(cheapSpec());
    quiet.run();
    loud.run();

    ASSERT_EQ(quiet.result(a).status, JobResult::Status::Completed);
    ASSERT_EQ(loud.result(b).status, JobResult::Status::Completed);
    // The job report never carries telemetry, whatever the setting.
    EXPECT_EQ(quiet.result(a).report.dump(2),
              loud.result(b).report.dump(2));
    EXPECT_EQ(quiet.result(a).derived.dump(2),
              loud.result(b).derived.dump(2));
    EXPECT_EQ(quiet.spanSink().count(), 0u);
    EXPECT_GT(loud.spanSink().count(), 0u);
}

TEST(EngineTelemetry, ServiceReportCarriesQuantiles)
{
    EngineOptions options;
    options.telemetry = true;
    JobEngine engine(options);
    engine.submit(cheapSpec());
    engine.submit(cheapSpec()); // duplicate: cache hit
    engine.run();

    obs::Json report = engine.serviceReportJson();
    EXPECT_EQ(report.get("version").asUint(),
              static_cast<std::uint64_t>(serviceReportVersion));
    // v1 consumers keep working: the counters subtree is intact.
    const obs::Json &jobs =
        report.get("counters").get("svc").get("jobs");
    EXPECT_EQ(jobs.get("completed").asUint(), 2u);
    EXPECT_EQ(jobs.get("cache_hits").asUint(), 1u);

    const obs::Json &latency = report.get("latency");
    ASSERT_TRUE(latency.has("e2e"));
    EXPECT_EQ(latency.get("e2e").get("count").asUint(), 2u);
    ASSERT_TRUE(latency.has("simulate"));
    EXPECT_EQ(latency.get("simulate").get("count").asUint(), 1u);
    // p50 <= p99 <= max, and a simulated job is not free.
    const obs::Json &e2e = latency.get("e2e");
    EXPECT_LE(e2e.get("p50_ms").asDouble(),
              e2e.get("p99_ms").asDouble());
    EXPECT_LE(e2e.get("p99_ms").asDouble(),
              e2e.get("max_ms").asDouble());
    EXPECT_GT(e2e.get("max_ms").asDouble(), 0.0);
    EXPECT_TRUE(report.has("spans"));
}

TEST(EngineTelemetry, ExportsAreValidDocuments)
{
    EngineOptions options;
    options.telemetry = true;
    JobEngine engine(options);
    engine.submit(cheapSpec());
    engine.run();

    const std::string tracePath = scratchFile("trace.json");
    const std::string eventsPath = scratchFile("events.jsonl");
    engine.spanSink().writeChromeTrace(tracePath);
    engine.spanSink().writeJsonl(eventsPath);

    // The Chrome trace parses and its slices cover the job lanes.
    std::ifstream traceIn(tracePath);
    std::string traceText(
        (std::istreambuf_iterator<char>(traceIn)),
        std::istreambuf_iterator<char>());
    obs::Json trace = obs::Json::parse(traceText);
    ASSERT_TRUE(trace.has("traceEvents"));
    EXPECT_GE(trace.get("traceEvents").size(),
              engine.spanSink().count());

    // The JSONL log holds one well-formed object per span.
    std::ifstream eventsIn(eventsPath);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(eventsIn, line)) {
        obs::Json event = obs::Json::parse(line);
        EXPECT_TRUE(event.has("trace_id"));
        EXPECT_TRUE(event.has("stage"));
        EXPECT_TRUE(event.has("dur_us"));
        ++lines;
    }
    EXPECT_EQ(lines, engine.spanSink().count());
}

// ---------------------------------------------------------------- //
// Introspection

TEST(Introspection, MetricsAndHealthzRoundTrip)
{
    EngineOptions options;
    options.telemetry = true;
    JobEngine engine(options);
    engine.submit(cheapSpec());
    engine.run();

    obs::Json healthz =
        introspectionResponse(engine, "healthz", 1.5, 3);
    EXPECT_EQ(healthz.get("schema").asString(), "stitchd-healthz");
    EXPECT_EQ(healthz.get("status").asString(), "ok");
    EXPECT_EQ(healthz.get("queue_depth").asUint(), 0u);
    EXPECT_EQ(healthz.get("in_flight").asUint(), 0u);
    EXPECT_DOUBLE_EQ(healthz.get("uptime_s").asDouble(), 1.5);

    obs::Json metrics =
        introspectionResponse(engine, "metrics", 1.5, 3);
    EXPECT_EQ(metrics.get("schema").asString(), "stitchd-metrics");
    EXPECT_EQ(metrics.get("jobs").get("completed").asUint(), 1u);
    EXPECT_TRUE(metrics.get("cache").has("hit_rate"));
    EXPECT_TRUE(metrics.get("latency").has("e2e"));
    EXPECT_TRUE(metrics.has("errors"));

    obs::Json statz = introspectionResponse(engine, "statz", 1.5, 3);
    EXPECT_EQ(statz.get("schema").asString(), "stitchd-statz");
    EXPECT_EQ(statz.get("service").get("version").asUint(),
              static_cast<std::uint64_t>(serviceReportVersion));

    obs::Json bogus = introspectionResponse(engine, "nope", 0, 0);
    EXPECT_EQ(bogus.get("status").asString(), "error");
}

TEST(Introspection, ErrorRingRecordsFailedJobs)
{
    // The naive half of a dead-link scenario fails inside the worker
    // (same idiom as JobEngine.TypedFailureDoesNotSinkTheBatch) and
    // must surface in the error ring with its trace id.
    JobEngine engine;
    JobSpec naive;
    naive.app = "APP3-svm-enc";
    naive.mode = apps::AppMode::Stitch;
    naive.samplesShort = 1;
    naive.samplesLong = 2;
    for (const auto &link : fault::allSnocLinks())
        if (link.name() == "t9-t10")
            naive.faults = fault::FaultPlan::linkFailure(link);
    naive.healthFromFaults = false; // keep the healthy plan

    const int ok = engine.submit(cheapSpec());
    const int bad = engine.submit(naive);
    engine.run();
    ASSERT_EQ(engine.result(ok).status, JobResult::Status::Completed);
    ASSERT_EQ(engine.result(bad).status, JobResult::Status::Failed);

    obs::Json live = engine.introspectionJson();
    ASSERT_EQ(live.get("errors").size(), 1u);
    const obs::Json &entry = live.get("errors").at(0);
    EXPECT_EQ(entry.get("job").asUint(),
              static_cast<std::uint64_t>(bad));
    EXPECT_EQ(entry.get("kind").asString(), "config");
    EXPECT_EQ(entry.get("trace_id").asString(),
              telem::traceIdHex(engine.result(bad).traceId));
    EXPECT_EQ(live.get("queue_depth").asUint(), 0u);
    EXPECT_EQ(live.get("in_flight").asUint(), 0u);
    EXPECT_TRUE(live.get("cache").has("hit_rate"));
}

TEST(Introspection, WireRoundTripAgainstLiveServer)
{
    EngineOptions options;
    options.telemetry = true;
    JobEngine engine(options);
    Server server(engine, 0);
    std::thread serving([&] { server.serve(/*maxRequests=*/2); });

    obs::Json job = obs::Json::object();
    job.set("schema", jobSchema);
    job.set("version", jobSchemaVersion);
    job.set("app", "APP1-gesture");
    job.set("samples_short", 1);
    job.set("samples_long", 2);
    job.set("mode", "baseline");
    obs::Json response =
        requestReport("127.0.0.1", server.port(), job);
    EXPECT_EQ(response.get("status").asString(), "ok");

    obs::Json probe = obs::Json::object();
    probe.set("cmd", "metrics");
    obs::Json metrics =
        requestReport("127.0.0.1", server.port(), probe);
    serving.join();

    EXPECT_EQ(metrics.get("schema").asString(), "stitchd-metrics");
    EXPECT_EQ(metrics.get("jobs").get("completed").asUint(), 1u);
    EXPECT_GE(metrics.get("served").asUint(), 2u);
    EXPECT_GT(metrics.get("uptime_s").asDouble(), 0.0);
    // The respond stage of the job request was recorded as a span.
    bool sawRespond = false;
    for (const auto &span : engine.spanSink().snapshot())
        sawRespond |= span.stage == telem::Stage::Respond;
    EXPECT_TRUE(sawRespond);
}

TEST(Introspection, BacklogTracksPendingBands)
{
    JobEngine engine;
    JobSpec low = cheapSpec();
    low.priority = 0;
    JobSpec high = cheapSpec(apps::AppMode::Locus);
    high.priority = 5;
    engine.submit(low);
    engine.submit(high);
    const int cancelled = engine.submit(high);

    obs::Json live = engine.introspectionJson();
    EXPECT_EQ(live.get("queue_depth").asUint(), 3u);
    EXPECT_EQ(
        live.get("per_band_backlog").get("5").asUint(), 2u);
    EXPECT_EQ(
        live.get("per_band_backlog").get("0").asUint(), 1u);

    engine.cancel(cancelled);
    live = engine.introspectionJson();
    EXPECT_EQ(live.get("queue_depth").asUint(), 2u);
    EXPECT_EQ(
        live.get("per_band_backlog").get("5").asUint(), 1u);

    engine.run();
    live = engine.introspectionJson();
    EXPECT_EQ(live.get("queue_depth").asUint(), 0u);
}

} // namespace
} // namespace stitch::svc

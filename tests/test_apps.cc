/** @file Application-graph and end-to-end runner tests (Fig. 9 /
 *  Fig. 12 shapes). */

#include <gtest/gtest.h>

#include "apps/app_runner.hh"

namespace stitch::apps
{
namespace
{

TEST(AppSpecs, AllHaveSixteenStagesAndValidEdges)
{
    for (const auto &app : allApps()) {
        EXPECT_EQ(app.stageKernels.size(), 16u) << app.name;
        for (const auto &edge : app.edges) {
            EXPECT_GE(edge.from, 0);
            EXPECT_LT(edge.from, 16);
            EXPECT_GE(edge.to, 0);
            EXPECT_LT(edge.to, 16);
            EXPECT_NE(edge.from, edge.to);
        }
        // At most one edge per ordered pair (tags are fixed at 0).
        std::set<std::pair<int, int>> seen;
        for (const auto &edge : app.edges)
            EXPECT_TRUE(seen.insert({edge.from, edge.to}).second)
                << app.name;
        // Channel fan-in/out must fit the comm tables (4 each)...
        for (int k = 0; k < 16; ++k) {
            EXPECT_LE(app.inDegree(k), 8) << app.name;
            EXPECT_LE(app.outDegree(k), 8) << app.name;
        }
    }
}

TEST(AppSpecs, GraphsAreAcyclic)
{
    for (const auto &app : allApps()) {
        // Kahn's algorithm.
        std::vector<int> indeg(16, 0);
        for (const auto &e : app.edges)
            ++indeg[static_cast<std::size_t>(e.to)];
        std::vector<int> ready;
        for (int k = 0; k < 16; ++k)
            if (indeg[static_cast<std::size_t>(k)] == 0)
                ready.push_back(k);
        int removed = 0;
        while (!ready.empty()) {
            int v = ready.back();
            ready.pop_back();
            ++removed;
            for (const auto &e : app.edges)
                if (e.from == v &&
                    --indeg[static_cast<std::size_t>(e.to)] == 0)
                    ready.push_back(e.to);
        }
        EXPECT_EQ(removed, 16) << app.name << " has a cycle";
    }
}

TEST(AppSpecs, KernelNamesExistInCatalog)
{
    for (const auto &app : allApps())
        for (const auto &name : app.stageKernels)
            EXPECT_NO_THROW(kernels::kernelByName(name)) << name;
}

TEST(AppModeNames, Stable)
{
    EXPECT_STREQ(appModeName(AppMode::Baseline), "baseline");
    EXPECT_STREQ(appModeName(AppMode::Stitch), "Stitch");
}

/** End-to-end: every app improves under every accelerated mode and
 *  the paper's ordering holds. Compilation results are cached inside
 *  the runner, so one fixture serves all apps. */
class AppEndToEnd : public ::testing::TestWithParam<int>
{
  protected:
    static AppRunner &
    runner()
    {
        static AppRunner instance(2, 6);
        return instance;
    }
};

TEST_P(AppEndToEnd, ModeOrderingMatchesThePaper)
{
    auto app = allApps()[static_cast<std::size_t>(GetParam())];
    auto base = runner().run(app, AppMode::Baseline);
    auto locus = runner().run(app, AppMode::Locus);
    auto noFusion = runner().run(app, AppMode::StitchNoFusion);
    auto full = runner().run(app, AppMode::Stitch);

    double b = base.perSampleCycles();
    EXPECT_GT(b, 0.0);
    // Everyone beats the baseline.
    EXPECT_LT(locus.perSampleCycles(), b);
    EXPECT_LT(noFusion.perSampleCycles(), b);
    EXPECT_LT(full.perSampleCycles(), b);
    // Fusion never hurts relative to no-fusion.
    EXPECT_LE(full.perSampleCycles(),
              noFusion.perSampleCycles() * 1.01);
    // Stitch at least matches LOCUS (paper Fig. 12).
    EXPECT_LE(full.perSampleCycles(),
              locus.perSampleCycles() * 1.02);

    // The Stitch plan is well-formed.
    ASSERT_TRUE(full.hasPlan);
    std::string why;
    EXPECT_TRUE(full.plan.snoc.validate(&why)) << why;

    // Messages flow in every mode.
    EXPECT_GT(full.stats.messages, 0u);
    EXPECT_EQ(full.stats.messages, base.stats.messages);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppEndToEnd,
                         ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int> &i) {
                             return allApps()[static_cast<std::size_t>(
                                                  i.param)]
                                 .name.substr(0, 4);
                         });

TEST(AppEndToEndExtra, App2GainsMost)
{
    AppRunner runner(2, 6);
    double best = 0;
    std::string which;
    for (const auto &app : allApps()) {
        auto base = runner.run(app, AppMode::Baseline);
        auto full = runner.run(app, AppMode::Stitch);
        double boost =
            base.perSampleCycles() / full.perSampleCycles();
        if (boost > best) {
            best = boost;
            which = app.name;
        }
    }
    // Paper Section VI-C: APP2 (and APP4) gain the most; APP2's
    // imbalance makes it the winner in our reproduction.
    EXPECT_EQ(which, "APP2-cnn");
    EXPECT_GT(best, 2.0);
}

} // namespace
} // namespace stitch::apps

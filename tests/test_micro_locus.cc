/** @file Micro-DFG interpreter and LOCUS SFU tests. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/locus.hh"
#include "core/micro.hh"
#include "mem/addrmap.hh"

namespace stitch::core
{
namespace
{

class VectorSpm : public SpmPort
{
  public:
    Word
    load(Addr a) override
    {
        return data[(a - mem::spmBase) / 4];
    }

    void
    store(Addr a, Word v) override
    {
        data[(a - mem::spmBase) / 4] = v;
    }

    std::array<Word, 16> data{};
};

TEST(MicroDfg, PortReferences)
{
    EXPECT_EQ(microPortRef(0), -1);
    EXPECT_EQ(microPortRef(3), -4);
}

TEST(MicroDfg, ChainEvaluation)
{
    // (in0 * in1 + in2) >> in3
    MicroDfg dfg;
    dfg.ops.push_back({MicroOp::Kind::Mul, AluOp::Pass, ShiftOp::Pass,
                       microPortRef(0), microPortRef(1)});
    dfg.ops.push_back({MicroOp::Kind::Alu, AluOp::Add, ShiftOp::Pass,
                       0, microPortRef(2)});
    dfg.ops.push_back({MicroOp::Kind::Shift, AluOp::Pass,
                       ShiftOp::Srl, 1, microPortRef(3)});
    dfg.rd0Op = 2;
    auto res = dfg.evaluate({6, 7, 22, 2}, nullptr);
    EXPECT_TRUE(res.writeRd0);
    EXPECT_EQ(res.rd0, (6u * 7u + 22u) >> 2);
    EXPECT_FALSE(res.writeRd1);
}

TEST(MicroDfg, TwoOutputs)
{
    MicroDfg dfg;
    dfg.ops.push_back({MicroOp::Kind::Alu, AluOp::Add, ShiftOp::Pass,
                       microPortRef(0), microPortRef(1)});
    dfg.ops.push_back({MicroOp::Kind::Alu, AluOp::Xor, ShiftOp::Pass,
                       0, microPortRef(2)});
    dfg.rd0Op = 1;
    dfg.rd1Op = 0;
    auto res = dfg.evaluate({1, 2, 0xf, 0}, nullptr);
    EXPECT_EQ(res.rd0, 3u ^ 0xfu);
    EXPECT_EQ(res.rd1, 3u);
}

TEST(MicroDfg, LoadStore)
{
    VectorSpm spm;
    spm.data[2] = 55;
    MicroDfg dfg;
    dfg.ops.push_back({MicroOp::Kind::Load, AluOp::Pass,
                       ShiftOp::Pass, microPortRef(0), -1});
    dfg.ops.push_back({MicroOp::Kind::Alu, AluOp::Add, ShiftOp::Pass,
                       0, microPortRef(1)});
    dfg.ops.push_back({MicroOp::Kind::Store, AluOp::Pass,
                       ShiftOp::Pass, microPortRef(0), 1});
    dfg.rd0Op = 1;
    EXPECT_TRUE(dfg.usesMemory());
    auto res = dfg.evaluate({mem::spmBase + 8, 1, 0, 0}, &spm);
    EXPECT_EQ(res.rd0, 56u);
    EXPECT_EQ(spm.data[2], 56u);
}

TEST(MicroDfg, MemoryWithoutPortPanics)
{
    MicroDfg dfg;
    dfg.ops.push_back({MicroOp::Kind::Load, AluOp::Pass,
                       ShiftOp::Pass, microPortRef(0), -1});
    EXPECT_DEATH(dfg.evaluate({0, 0, 0, 0}, nullptr), "SPM");
}

TEST(LocusSfu, ExecutesInstalledConfig)
{
    LocusSfu sfu;
    MicroDfg dfg;
    dfg.ops.push_back({MicroOp::Kind::Alu, AluOp::Sub, ShiftOp::Pass,
                       microPortRef(0), microPortRef(1)});
    dfg.rd0Op = 0;
    auto blob = sfu.addConfig(dfg);
    auto res = sfu.executeCustom(0, blob, {10, 4, 0, 0});
    EXPECT_EQ(res.rd0, 6u);
}

TEST(LocusSfu, InstallTableReplaces)
{
    LocusSfu sfu;
    MicroDfg a;
    a.ops.push_back({MicroOp::Kind::Alu, AluOp::Add, ShiftOp::Pass,
                     microPortRef(0), microPortRef(1)});
    a.rd0Op = 0;
    sfu.addConfig(a);
    MicroDfg b = a;
    b.ops[0].aluOp = AluOp::Xor;
    sfu.installTable({b});
    auto res = sfu.executeCustom(0, 0, {6, 3, 0, 0});
    EXPECT_EQ(res.rd0, 5u);
}

TEST(LocusSfu, RejectsMemoryIses)
{
    LocusSfu sfu;
    MicroDfg dfg;
    dfg.ops.push_back({MicroOp::Kind::Load, AluOp::Pass,
                       ShiftOp::Pass, microPortRef(0), -1});
    EXPECT_DEATH(sfu.addConfig(dfg), "load/store");
}

TEST(LocusSfu, RejectsOversizedIses)
{
    LocusSfu sfu;
    MicroDfg dfg;
    for (int i = 0; i < LocusParams{}.maxOps + 1; ++i)
        dfg.ops.push_back({MicroOp::Kind::Alu, AluOp::Add,
                           ShiftOp::Pass, microPortRef(0),
                           microPortRef(1)});
    EXPECT_DEATH(sfu.addConfig(dfg), "capacity");
}

TEST(LocusSfu, BadIndexPanics)
{
    LocusSfu sfu;
    EXPECT_DEATH(sfu.executeCustom(0, 3, {0, 0, 0, 0}),
                 "out of range");
}

} // namespace
} // namespace stitch::core

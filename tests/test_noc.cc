/** @file Inter-core NoC model tests. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "noc/noc_model.hh"

namespace stitch::noc
{
namespace
{

TEST(Noc, BaseLatencyFormula)
{
    NocModel noc;
    // hops * (5-stage router + 1-cycle link) + 4 serialization +
    // 2 inject + 2 eject (paper Table II parameters).
    EXPECT_EQ(noc.baseLatency(0, 0), 2u + 4u + 2u);
    EXPECT_EQ(noc.baseLatency(0, 1), 2u + 6u + 4u + 2u);
    EXPECT_EQ(noc.baseLatency(0, 15), 2u + 6u * 6u + 4u + 2u);
}

TEST(Noc, UncontendedDeliveryMatchesBaseLatency)
{
    NocModel noc;
    noc.send(0, 5, 0, 42, 100);
    auto msg = noc.tryRecv(5, 0, 0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->first, 42u);
    EXPECT_EQ(msg->second, 100 + noc.baseLatency(0, 5));
}

TEST(Noc, TagAndSourceMatching)
{
    NocModel noc;
    noc.send(1, 4, 7, 111, 0);
    noc.send(2, 4, 7, 222, 0);
    EXPECT_FALSE(noc.tryRecv(4, 3, 7).has_value());
    EXPECT_FALSE(noc.tryRecv(4, 1, 8).has_value());
    EXPECT_EQ(noc.tryRecv(4, 2, 7)->first, 222u);
    EXPECT_EQ(noc.tryRecv(4, 1, 7)->first, 111u);
    EXPECT_FALSE(noc.tryRecv(4, 1, 7).has_value());
}

TEST(Noc, FifoPerSourceTagPair)
{
    NocModel noc;
    noc.send(0, 3, 0, 1, 0);
    noc.send(0, 3, 0, 2, 10);
    noc.send(0, 3, 0, 3, 20);
    EXPECT_EQ(noc.tryRecv(3, 0, 0)->first, 1u);
    EXPECT_EQ(noc.tryRecv(3, 0, 0)->first, 2u);
    EXPECT_EQ(noc.tryRecv(3, 0, 0)->first, 3u);
}

TEST(Noc, LinkContentionSerializes)
{
    NocModel noc;
    // Two messages injected simultaneously over the same first link
    // (0 -> 1): the second queues behind the first's 5 flits.
    noc.send(0, 3, 0, 1, 0);
    noc.send(0, 3, 1, 2, 0);
    auto first = noc.tryRecv(3, 0, 0);
    auto second = noc.tryRecv(3, 0, 1);
    ASSERT_TRUE(first && second);
    EXPECT_EQ(second->second - first->second, 5u);
    EXPECT_GT(noc.stats().get("link_stall_cycles"), 0u);
}

TEST(Noc, DisjointPathsDoNotContend)
{
    NocModel noc;
    noc.send(0, 1, 0, 1, 0);
    noc.send(4, 5, 0, 2, 0);
    EXPECT_EQ(noc.tryRecv(1, 0, 0)->second,
              noc.tryRecv(5, 4, 0)->second);
}

TEST(Noc, ArrivalsMonotonicPerSenderPair)
{
    NocModel noc;
    Cycles prev = 0;
    for (int i = 0; i < 10; ++i) {
        noc.send(0, 15, 0, static_cast<Word>(i),
                 static_cast<Cycles>(i));
        auto msg = noc.tryRecv(15, 0, 0);
        ASSERT_TRUE(msg.has_value());
        EXPECT_GT(msg->second, prev);
        prev = msg->second;
    }
}

TEST(Noc, SelfSendWorks)
{
    NocModel noc;
    noc.send(6, 6, 0, 9, 50);
    auto msg = noc.tryRecv(6, 6, 0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->second, 50 + noc.baseLatency(6, 6));
}

TEST(Noc, InvalidDestinationIsFatal)
{
    NocModel noc;
    EXPECT_THROW(noc.send(0, 16, 0, 0, 0), FatalError);
    EXPECT_THROW(noc.send(0, -1, 0, 0, 0), FatalError);
}

TEST(Noc, ResetDropsEverything)
{
    NocModel noc;
    noc.send(0, 1, 0, 5, 0);
    EXPECT_TRUE(noc.hasPendingMessages());
    noc.reset();
    EXPECT_FALSE(noc.hasPendingMessages());
    EXPECT_FALSE(noc.tryRecv(1, 0, 0).has_value());
}

TEST(Noc, SenderOnlyPaysInjection)
{
    NocModel noc;
    EXPECT_EQ(noc.send(0, 15, 0, 0, 0), NocParams{}.nicInject);
}

} // namespace
} // namespace stitch::noc

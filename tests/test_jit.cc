/** @file Compiled-backend (translation cache) tests: the trace IR,
 *  its validator and dumper, the inline-cached memory routing, the
 *  superinstruction fuser, and the byte-exactness of the compiled
 *  dispatch loop against the interpreter oracle — including typed
 *  execution faults and deopt back to the exact regimes. */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "fault/fault.hh"
#include "isa/assembler.hh"
#include "jit/dump.hh"
#include "jit/translate.hh"
#include "jit/validate.hh"
#include "mem/addrmap.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace stitch
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

constexpr std::int32_t spmAddr =
    static_cast<std::int32_t>(mem::spmBase);
constexpr std::int32_t xbarAddr =
    static_cast<std::int32_t>(mem::xbarConfigAddr);

compiler::RewrittenProgram
wrap(isa::Program prog)
{
    compiler::RewrittenProgram binary;
    binary.program = std::move(prog);
    return binary;
}

/** Word-address → instruction-index map, as the core builds it. */
std::vector<std::int32_t>
wordToIndex(const isa::Program &prog)
{
    std::vector<std::int32_t> map(prog.wordCount(), -1);
    for (std::size_t i = 0; i < prog.code().size(); ++i)
        map[prog.wordAddrOf(i)] = static_cast<std::int32_t>(i);
    return map;
}

/**
 * Run the same program through the step interpreter and the compiled
 * dispatch loop on two independent cores and require every observable —
 * final cycle count, retired instructions, and the whole register
 * file — to agree exactly (the oracle contract of DESIGN.md §15).
 */
struct OraclePair
{
    mem::TileMemory interpMem;
    mem::TileMemory compiledMem;
    cpu::Core interp{0, interpMem, nullptr, nullptr};
    cpu::Core compiled{0, compiledMem, nullptr, nullptr};

    void
    runBoth(const std::function<void(Assembler &)> &build)
    {
        Assembler a("jit_interp");
        build(a);
        interp.loadProgram(a.finish());
        interp.runToHalt();

        Assembler b("jit_compiled");
        build(b);
        compiled.loadProgram(b.finish());
        compiled.runToHaltCompiled();

        EXPECT_EQ(interp.time(), compiled.time());
        EXPECT_EQ(interp.instructionsRetired(),
                  compiled.instructionsRetired());
        for (RegId r = 0; r < numRegs; ++r)
            EXPECT_EQ(interp.reg(r), compiled.reg(r))
                << "register " << r;
    }
};

TEST(JitTranslate, ReloadDropsTheTranslationCache)
{
    mem::TileMemory memory;
    cpu::Core core(0, memory, nullptr, nullptr);
    auto build = [] {
        Assembler a("reload");
        auto loop = a.newLabel();
        a.li(t0, 6);
        a.bind(loop);
        a.addi(t0, t0, -1);
        a.bne(t0, zero, loop);
        a.halt();
        return a.finish();
    };
    core.loadProgram(build());
    core.runToHaltCompiled();
    EXPECT_GT(core.traceCount(), 0u);
    EXPECT_GT(core.jitStats().tracesTranslated, 0u);
    EXPECT_GT(core.jitStats().dispatches, 0u);

    // The cache indexes into the old code image; a reload must drop
    // every trace and restart the stats from zero.
    core.loadProgram(build());
    EXPECT_EQ(core.traceCount(), 0u);
    EXPECT_EQ(core.jitStats().tracesTranslated, 0u);
    EXPECT_EQ(core.jitStats().dispatches, 0u);
    core.runToHaltCompiled();
    EXPECT_GT(core.traceCount(), 0u);
}

TEST(JitExecute, AluLoopMatchesInterpreterExactly)
{
    OraclePair pair;
    pair.runBoth([](Assembler &a) {
        auto loop = a.newLabel();
        a.li(t0, 20);
        a.li(t1, 0);
        a.li(t2, 3);
        a.bind(loop);
        a.add(t1, t1, t0);
        a.mul(t3, t1, t2);
        a.srai(t4, t3, 2);
        a.addi(t0, t0, -1);
        a.bne(t0, zero, loop);
        a.halt();
    });
    EXPECT_GT(pair.compiled.jitStats().dispatches, 1u);
}

TEST(JitExecute, SpmAndDramTrafficMatchesInterpreterExactly)
{
    OraclePair pair;
    pair.runBoth([](Assembler &a) {
        auto loop = a.newLabel();
        a.li(t0, 0x2000); // cached DRAM
        a.li(t1, spmAddr);
        a.li(t2, 8);
        a.bind(loop);
        a.lw(t3, t0, 0);
        a.addi(t3, t3, 7);
        a.sw(t3, t0, 0); // load–op–store over DRAM
        a.sw(t3, t1, 0);
        a.lb(t4, t1, 0); // byte traffic over the scratchpad
        a.sb(t4, t0, 64);
        a.addi(t0, t0, 4);
        a.addi(t2, t2, -1);
        a.bne(t2, zero, loop);
        a.halt();
    });
    EXPECT_GT(pair.compiled.jitStats().superinstructions, 0u);
}

TEST(JitExecute, GuardMissRepredictsWithoutCounterDrift)
{
    // One static load site whose base alternates between the
    // scratchpad and cached DRAM every iteration: the inline cache
    // mispredicts on each execution after the first, repredicts, and
    // must still produce interpreter-exact cycle accounting.
    OraclePair pair;
    pair.runBoth([](Assembler &a) {
        auto loop = a.newLabel();
        a.li(t0, spmAddr);
        a.li(t1, 0x1000);
        a.add(t2, t0, t1); // t2 - base swaps the classes
        a.mov(t4, t0);
        a.li(t5, 8);
        a.bind(loop);
        a.lw(t3, t4, 0);
        a.sub(t4, t2, t4);
        a.addi(t5, t5, -1);
        a.bne(t5, zero, loop);
        a.halt();
    });
    EXPECT_GT(pair.compiled.jitStats().guardMisses, 0u);
}

TEST(JitExecute, XbarConfigStoreRoutesLikeTheInterpreter)
{
    OraclePair pair;
    pair.runBoth([](Assembler &a) {
        a.li(t0, xbarAddr);
        a.li(t1, 0x5a5a);
        a.sw(t1, t0, 0); // no stall, no data-memory traffic
        a.li(t2, 0x2000);
        a.sw(t1, t2, 0); // same site class on a later program point
        a.halt();
    });
    EXPECT_EQ(pair.interp.xbarConfigReg(), 0x5a5au);
    EXPECT_EQ(pair.compiled.xbarConfigReg(), 0x5a5au);
    EXPECT_NE(pair.compiled.dumpJitTraces().find("class=xbar"),
              std::string::npos);
}

TEST(JitExecute, BranchOutOfRangeIsATypedExecutionFault)
{
    auto build = [] {
        Assembler a("wild");
        a.li(t0, 4000);
        a.jalr(ra, t0, 0);
        a.halt();
        return a.finish();
    };
    std::string interpWhat, compiledWhat;
    {
        mem::TileMemory memory;
        cpu::Core core(0, memory, nullptr, nullptr);
        core.loadProgram(build());
        try {
            core.runToHalt();
            FAIL() << "interpreter accepted a wild branch";
        } catch (const fault::ExecutionFaultError &e) {
            interpWhat = e.what();
        }
    }
    {
        mem::TileMemory memory;
        cpu::Core core(0, memory, nullptr, nullptr);
        core.loadProgram(build());
        try {
            core.runToHaltCompiled();
            FAIL() << "compiled backend accepted a wild branch";
        } catch (const fault::ExecutionFaultError &e) {
            compiledWhat = e.what();
        }
    }
    EXPECT_FALSE(interpWhat.empty());
    EXPECT_EQ(interpWhat, compiledWhat);
}

TEST(JitValidate, TranslatorOutputPassesAndCorruptionIsCaught)
{
    Assembler a("val");
    auto loop = a.newLabel();
    a.li(t0, 4);
    a.bind(loop);
    a.lw(t1, t0, 0);
    a.addi(t1, t1, 1);
    a.sw(t1, t0, 0);
    a.addi(t0, t0, -1);
    a.bne(t0, zero, loop);
    a.halt();
    auto prog = a.finish();
    auto w2i = wordToIndex(prog);

    jit::TranslateParams params;
    auto tr = jit::translate(prog, w2i, 0, params);
    std::string why;
    EXPECT_TRUE(
        jit::validateTrace(tr, prog, params.icacheBlockBytes, &why))
        << why;

    // Each corruption must be rejected with a reason, never printed
    // as truth (luajit-remake's validator-before-dump discipline).
    auto corrupt = tr;
    corrupt.uops.front().rd = numRegs;
    EXPECT_FALSE(jit::validateTrace(corrupt, prog,
                                    params.icacheBlockBytes, &why));
    EXPECT_FALSE(why.empty());

    corrupt = tr;
    corrupt.exitWord += 1;
    EXPECT_FALSE(jit::validateTrace(corrupt, prog,
                                    params.icacheBlockBytes, &why));

    corrupt = tr;
    corrupt.uops.front().fetchRepeats += 1;
    EXPECT_FALSE(jit::validateTrace(corrupt, prog,
                                    params.icacheBlockBytes, &why));
}

TEST(JitValidate, FusionIsExactAndOptional)
{
    Assembler a("fuse");
    auto loop = a.newLabel();
    a.li(t0, 0x400);
    a.li(t1, 4);
    a.bind(loop);
    a.lw(t2, t0, 0);
    a.addi(t2, t2, 5);
    a.sw(t2, t0, 0);
    a.addi(t1, t1, -1);
    a.bne(t1, zero, loop);
    a.halt();
    auto prog = a.finish();
    auto w2i = wordToIndex(prog);
    Addr entry = prog.wordAddrOf(2); // the loop head

    jit::TranslateParams fused;
    auto tr = jit::translate(prog, w2i, entry, fused);
    std::string why;
    ASSERT_TRUE(
        jit::validateTrace(tr, prog, fused.icacheBlockBytes, &why))
        << why;
    bool sawLoadAluStore = false;
    for (const auto &u : tr.uops)
        sawLoadAluStore |= u.kind == jit::UopKind::LoadAluStore;
    EXPECT_TRUE(sawLoadAluStore);

    jit::TranslateParams plain = fused;
    plain.fuse = false;
    auto flat = jit::translate(prog, w2i, entry, plain);
    ASSERT_TRUE(
        jit::validateTrace(flat, prog, plain.icacheBlockBytes, &why))
        << why;
    EXPECT_EQ(flat.instrCount, tr.instrCount);
    EXPECT_GT(flat.uops.size(), tr.uops.size());
    for (const auto &u : flat.uops)
        EXPECT_FALSE(jit::uopIsFused(u.kind));
}

TEST(JitDump, RendersTracesAndFlagsInvalidOnes)
{
    Assembler a("dump");
    a.li(t0, 9);
    a.lw(t1, t0, 0);
    a.halt();
    auto prog = a.finish();
    auto w2i = wordToIndex(prog);
    jit::TranslateParams params;
    auto tr = jit::translate(prog, w2i, 0, params);

    std::string text =
        jit::dumpTrace(tr, prog, params.icacheBlockBytes);
    EXPECT_NE(text.find("trace @w0"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
    EXPECT_EQ(text.find("INVALID"), std::string::npos);

    tr.uops.front().rd = numRegs;
    text = jit::dumpTrace(tr, prog, params.icacheBlockBytes);
    EXPECT_NE(text.find("INVALID TRACE"), std::string::npos);
}

TEST(JitSystem, SendRecvRunsOnTheOracleWithIdenticalReports)
{
    auto runOnce = [](sim::SchedulerKind kind) {
        sim::SystemParams params;
        params.accel = sim::AccelMode::None;
        params.scheduler = kind;
        sim::System system(params);
        Assembler a("ping");
        auto loop = a.newLabel();
        a.li(t0, 1);  // peer tile
        a.li(t1, 16); // rounds
        a.li(t2, 7);
        a.bind(loop);
        a.send(t2, t0, 0);
        a.recv(t2, t0, 1);
        a.addi(t1, t1, -1);
        a.bne(t1, zero, loop);
        a.halt();
        Assembler b("pong");
        auto bloop = b.newLabel();
        b.li(t0, 0);
        b.li(t1, 16);
        b.bind(bloop);
        b.recv(t2, t0, 0);
        b.addi(t2, t2, 1);
        b.send(t2, t0, 1);
        b.addi(t1, t1, -1);
        b.bne(t1, zero, bloop);
        b.halt();
        system.loadProgram(0, wrap(a.finish()));
        system.loadProgram(1, wrap(b.finish()));
        auto stats = system.run();
        return std::make_pair(sim::runReport(stats).dump(2),
                              system.dumpTraces());
    };
    auto step = runOnce(sim::SchedulerKind::Step);
    auto compiled = runOnce(sim::SchedulerKind::Compiled);
    EXPECT_EQ(step.first, compiled.first);
    // The comm ops themselves single-step on the oracle, but the
    // loop bodies around them really did run from the cache.
    EXPECT_TRUE(step.second.empty());
    EXPECT_FALSE(compiled.second.empty());
}

TEST(JitSystem, ActiveInjectorDeoptsToTheExactRegime)
{
    auto runOnce = [](const fault::FaultPlan &plan) {
        sim::SystemParams params;
        params.accel = sim::AccelMode::None;
        params.scheduler = sim::SchedulerKind::Compiled;
        params.faults = plan;
        sim::System system(params);
        Assembler a("busy");
        auto loop = a.newLabel();
        a.li(t0, 32);
        a.bind(loop);
        a.addi(t0, t0, -1);
        a.bne(t0, zero, loop);
        a.halt();
        system.loadProgram(0, wrap(a.finish()));
        system.run();
        return system.dumpTraces();
    };
    // Healthy: the compiled regime engages and leaves traces behind.
    EXPECT_FALSE(runOnce(fault::FaultPlan{}).empty());
    // An active injector consumes pseudo-random draws in global event
    // order, so the run must fall back wholesale: no traces at all.
    EXPECT_TRUE(runOnce(fault::FaultPlan::bitFlips(0.01, 7)).empty());
}

TEST(JitSystem, FiniteBudgetDeoptsAndCutsAtTheSameInstruction)
{
    auto runOnce = [](sim::SchedulerKind kind) {
        sim::SystemParams params;
        params.accel = sim::AccelMode::None;
        params.scheduler = kind;
        sim::System system(params);
        for (TileId t = 0; t < 2; ++t) {
            Assembler a("spin");
            auto loop = a.newLabel();
            a.bind(loop);
            a.addi(t0, t0, 1);
            a.jmp(loop);
            a.halt();
            system.loadProgram(t, wrap(a.finish()));
        }
        auto stats = system.run(/*maxInstructions=*/777);
        return std::make_pair(sim::runReport(stats).dump(2),
                              system.dumpTraces());
    };
    auto step = runOnce(sim::SchedulerKind::Step);
    auto compiled = runOnce(sim::SchedulerKind::Compiled);
    EXPECT_EQ(step.first, compiled.first);
    EXPECT_TRUE(compiled.second.empty()); // budget forces deopt
}

TEST(JitSystem, CrashTerminationIsIdenticalAcrossSchedulers)
{
    std::vector<std::pair<fault::Termination, std::string>> outcomes;
    for (auto kind :
         {sim::SchedulerKind::Step, sim::SchedulerKind::Slice,
          sim::SchedulerKind::Compiled}) {
        sim::SystemParams params;
        params.accel = sim::AccelMode::None;
        params.scheduler = kind;
        sim::System system(params);
        Assembler a("crash");
        a.li(t0, 4000);
        a.jalr(ra, t0, 0);
        a.halt();
        system.loadProgram(0, wrap(a.finish()));
        auto stats = system.run();
        outcomes.emplace_back(stats.termination, stats.faultMessage);
    }
    for (const auto &[termination, message] : outcomes) {
        EXPECT_EQ(termination, fault::Termination::Fault);
        EXPECT_EQ(message, outcomes.front().second);
        EXPECT_NE(message.find("tile 0 crashed"), std::string::npos);
    }
}

} // namespace
} // namespace stitch

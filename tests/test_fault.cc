/** @file Fault model tests: typed validation, deterministic
 *  injection, termination semantics, and degraded re-stitching. */

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "compiler/stitcher.hh"
#include "fault/fault.hh"
#include "isa/assembler.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace stitch::fault
{
namespace
{

using namespace isa::reg;
using compiler::AccelTarget;
using compiler::KernelProfile;
using core::PatchKind;
using isa::Assembler;

compiler::RewrittenProgram
wrap(isa::Program prog)
{
    compiler::RewrittenProgram binary;
    binary.program = std::move(prog);
    return binary;
}

/** The mul-add CUST of the System tests: rd = 6 * 7 + 100. */
compiler::RewrittenProgram
mulAddCust()
{
    core::FusedConfig cfg;
    cfg.localKind = PatchKind::ATMA;
    cfg.local.a1op = core::AluOp::Pass;
    cfg.local.u1Lhs = core::U1Lhs::In1;
    cfg.local.u1Rhs = core::U1Rhs::In2;
    cfg.local.u2Lhs = core::U2Lhs::U1Out;
    cfg.local.u2Rhs = core::U2Rhs::In3;
    cfg.local.aop2 = core::AluOp::Add;
    cfg.local.outCfg = core::OutCfg::S2;

    Assembler a("cust");
    a.li(t0, 6);
    a.li(t1, 7);
    a.li(t2, 100);
    isa::Instr cust;
    cust.op = isa::Opcode::Cust;
    cust.rd0 = t4;
    cust.rs0 = zero;
    cust.rs1 = t0;
    cust.rs2 = t1;
    cust.rs3 = t2;
    cust.cfg = 0;
    a.emit(cust);
    a.halt();
    auto prog = a.finish();
    prog.addIseConfig(cfg.packBlob());
    return wrap(std::move(prog));
}

/** Two tiles sending each other one message (completes). */
void
loadPingPong(sim::System &system)
{
    Assembler a("ping");
    a.li(t0, 42);
    a.li(t1, 1);
    a.send(t0, t1, 0);
    a.recv(t2, t1, 0);
    a.halt();
    Assembler b("pong");
    b.li(t1, 0);
    b.recv(t2, t1, 0);
    b.addi(t2, t2, 1);
    b.send(t2, t1, 0);
    b.halt();
    system.loadProgram(0, wrap(a.finish()));
    system.loadProgram(1, wrap(b.finish()));
}

KernelProfile
profile(const std::string &name, Cycles sw,
        std::vector<std::pair<AccelTarget, Cycles>> options)
{
    KernelProfile p;
    p.name = name;
    p.swCycles = sw;
    p.options = std::move(options);
    return p;
}

/** Sixteen kernels that all want an accelerator of any kind. */
std::vector<KernelProfile>
sixteenHungryKernels()
{
    std::vector<KernelProfile> kernels;
    for (int i = 0; i < 16; ++i) {
        std::string name = "k";
        name += std::to_string(i);
        kernels.push_back(profile(
            name, 1000,
            {{AccelTarget::fused(PatchKind::ATMA, PatchKind::ATAS),
              300},
             {AccelTarget::single(PatchKind::ATMA), 500},
             {AccelTarget::single(PatchKind::ATAS), 550},
             {AccelTarget::single(PatchKind::ATSA), 550}}));
    }
    return kernels;
}

// ---------------------------------------------------------------------
// Plan validation and enumeration.
// ---------------------------------------------------------------------

TEST(FaultPlan, ValidatesProbabilities)
{
    FaultPlan plan;
    plan.msgDropProb = 1.5;
    EXPECT_THROW(plan.validate(), ConfigError);
    plan = FaultPlan{};
    plan.custFlipProb = -0.1;
    EXPECT_THROW(plan.validate(), ConfigError);
}

TEST(FaultPlan, ValidatesDelayCycles)
{
    FaultPlan plan;
    plan.msgDelayProb = 0.5; // armed, but zero extra cycles
    EXPECT_THROW(plan.validate(), ConfigError);
    plan.msgDelayCycles = 10;
    EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, RejectsOffMeshLink)
{
    FaultPlan plan;
    // Tile 3 sits on the east edge: no east neighbour.
    plan.snocLinksDown.push_back({3, core::SnocPort::East});
    EXPECT_THROW(plan.validate(), ConfigError);
}

TEST(FaultPlan, AllSnocLinksCoversTheMesh)
{
    auto links = allSnocLinks();
    // A 4x4 mesh has 2 * 4 * 3 = 24 undirected links.
    EXPECT_EQ(links.size(), 24u);
    std::set<std::string> names;
    for (const auto &link : links) {
        EXPECT_TRUE(names.insert(link.name()).second)
            << "duplicate link " << link.name();
        FaultPlan plan = FaultPlan::linkFailure(link);
        EXPECT_NO_THROW(plan.validate());
    }
}

TEST(FaultInjector, SameSeedSameDecisions)
{
    auto plan = FaultPlan::messageDrop(0.3, 1234);
    plan.custFlipProb = 0.25;
    FaultInjector a(plan), b(plan);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.dropMessage(), b.dropMessage());
        EXPECT_EQ(a.custFlipBit(), b.custFlipBit());
    }
}

// ---------------------------------------------------------------------
// Eager SystemParams validation.
// ---------------------------------------------------------------------

TEST(SystemValidation, RejectsBadCacheGeometry)
{
    sim::SystemParams params;
    params.mem.icache.blockBytes = 48; // not a power of two
    EXPECT_THROW(sim::System{params}, ConfigError);
}

TEST(SystemValidation, RejectsBadFaultPlan)
{
    sim::SystemParams params;
    params.faults.msgDropProb = 2.0;
    EXPECT_THROW(sim::System{params}, ConfigError);
}

TEST(SystemValidation, HardFaultsNeedThePatchFabric)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    params.faults = FaultPlan::patchFailure(3);
    EXPECT_THROW(sim::System{params}, ConfigError);
}

// ---------------------------------------------------------------------
// Termination semantics.
// ---------------------------------------------------------------------

TEST(Termination, DeadlockCarriesBlockedTileDiagnostics)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    Assembler a("d0");
    a.li(t1, 1);
    a.recv(t2, t1, 7);
    a.halt();
    Assembler b("d1");
    b.li(t1, 0);
    b.recv(t2, t1, 9);
    b.halt();
    system.loadProgram(0, wrap(a.finish()));
    system.loadProgram(1, wrap(b.finish()));

    auto stats = system.run();
    EXPECT_EQ(stats.termination, Termination::Deadlock);
    ASSERT_EQ(stats.blockedTiles.size(), 2u);
    EXPECT_EQ(stats.blockedTiles[0].tile, 0);
    EXPECT_EQ(stats.blockedTiles[0].waitingSrc, 1);
    EXPECT_EQ(stats.blockedTiles[0].waitingTag, 7);
    EXPECT_EQ(stats.blockedTiles[1].tile, 1);
    EXPECT_EQ(stats.blockedTiles[1].waitingSrc, 0);
    EXPECT_EQ(stats.blockedTiles[1].waitingTag, 9);
    EXPECT_GT(stats.instructions, 0u); // partial stats survive
}

TEST(Termination, InstructionLimitIsExactAndNonFatal)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    Assembler a("loop");
    auto loop = a.newLabel();
    a.bind(loop);
    a.addi(t0, t0, 1);
    a.jmp(loop);
    a.halt();
    system.loadProgram(0, wrap(a.finish()));

    auto stats = system.run(/*maxInstructions=*/100);
    EXPECT_EQ(stats.termination, Termination::InstructionLimit);
    EXPECT_EQ(stats.instructions, 100u); // the budget, not budget + 1
}

TEST(Termination, HaltingExactlyAtTheLimitCompletes)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    Assembler a("tiny");
    a.addi(t0, t0, 1);
    a.addi(t0, t0, 1);
    a.halt();
    system.loadProgram(0, wrap(a.finish()));

    auto stats = system.run(/*maxInstructions=*/3);
    EXPECT_EQ(stats.termination, Termination::Completed);
    EXPECT_EQ(stats.instructions, 3u);
}

// ---------------------------------------------------------------------
// Run-time injection.
// ---------------------------------------------------------------------

TEST(Injection, DeadPatchSurfacesAsStructuredFault)
{
    sim::SystemParams params; // Stitch mode
    params.faults = FaultPlan::patchFailure(0);
    sim::System system(params);
    system.loadProgram(0, mulAddCust());

    auto stats = system.run();
    EXPECT_EQ(stats.termination, Termination::Fault);
    ASSERT_TRUE(stats.patchFault.has_value());
    EXPECT_EQ(stats.patchFault->tile, 0);
    EXPECT_EQ(stats.patchFault->patch, 0);
    EXPECT_FALSE(stats.patchFault->reason.empty());
    EXPECT_FALSE(stats.faultMessage.empty());
}

TEST(Injection, CertainBitFlipCorruptsExactlyOneBit)
{
    sim::SystemParams params;
    params.faults = FaultPlan::bitFlips(1.0, 99);
    sim::System system(params);
    system.loadProgram(0, mulAddCust());

    auto stats = system.run();
    EXPECT_EQ(stats.termination, Termination::Completed);
    EXPECT_EQ(stats.custBitFlips, 1u);
    Word got = system.coreAt(0).reg(t4);
    Word want = 6u * 7u + 100u;
    EXPECT_NE(got, want);
    EXPECT_EQ(std::popcount(got ^ want), 1);
}

TEST(Injection, CertainDropDeadlocksTheReceiver)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    params.faults = FaultPlan::messageDrop(1.0, 5);
    sim::System system(params);
    loadPingPong(system);

    auto stats = system.run();
    EXPECT_EQ(stats.termination, Termination::Deadlock);
    EXPECT_GE(stats.messagesDropped, 1u);
    EXPECT_FALSE(stats.blockedTiles.empty());
}

TEST(Injection, DelayedMessagesStillArrive)
{
    Cycles baseline = 0;
    {
        sim::SystemParams params;
        params.accel = sim::AccelMode::None;
        sim::System system(params);
        loadPingPong(system);
        auto stats = system.run();
        EXPECT_EQ(stats.termination, Termination::Completed);
        baseline = stats.makespan;
    }
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    params.faults = FaultPlan::messageDelay(1.0, 500, 5);
    sim::System system(params);
    loadPingPong(system);

    auto stats = system.run();
    EXPECT_EQ(stats.termination, Termination::Completed);
    EXPECT_EQ(stats.messagesDelayed, 2u);
    EXPECT_GE(stats.makespan, baseline + 500);
    EXPECT_EQ(system.coreAt(0).reg(t2), 43u);
}

TEST(Injection, SameSeedReproducesTheRun)
{
    auto once = [] {
        sim::SystemParams params;
        params.accel = sim::AccelMode::None;
        params.faults = FaultPlan::messageDelay(0.5, 200, 77);
        sim::System system(params);
        loadPingPong(system);
        return system.run();
    };
    auto a = once();
    auto b = once();
    EXPECT_EQ(a.termination, b.termination);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.messagesDelayed, b.messagesDelayed);
    EXPECT_EQ(a.messagesDropped, b.messagesDropped);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Injection, ConfigureSnocRejectsPresetOverDeadLink)
{
    core::SnocConfig snoc;
    ASSERT_TRUE(snoc.addFusion(0, PatchKind::ATMA, 1,
                               PatchKind::ATAS));

    sim::SystemParams params;
    params.faults = FaultPlan::linkFailure({0, core::SnocPort::East});
    sim::System system(params);
    EXPECT_THROW(system.configureSnoc(snoc), ConfigError);
}

// ---------------------------------------------------------------------
// sNoC routing around dead links.
// ---------------------------------------------------------------------

TEST(SnocHealth, RoutingDetoursAroundADisabledLink)
{
    core::SnocConfig snoc;
    snoc.disableLink(0, core::SnocPort::East);
    EXPECT_FALSE(snoc.linkUp(0, core::SnocPort::East));
    EXPECT_FALSE(snoc.linkUp(1, core::SnocPort::West)); // undirected
    auto path = snoc.addPath(0, core::SnocPort::Patch, 1,
                             core::SnocPort::Patch);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->hops(), 3); // t0 -> t4 -> t5 -> t1
    std::string why;
    EXPECT_TRUE(snoc.validate(&why)) << why;
}

// ---------------------------------------------------------------------
// Degraded re-stitching.
// ---------------------------------------------------------------------

TEST(Restitch, HealthyMaskReproducesThePlanBitForBit)
{
    auto arch = core::StitchArch::standard();
    auto kernels = sixteenHungryKernels();
    auto base = compiler::stitchApplication(kernels, arch);
    auto masked = compiler::stitchApplication(kernels, arch,
                                              ArchHealth::healthy());
    ASSERT_EQ(base.placements.size(), masked.placements.size());
    for (std::size_t i = 0; i < base.placements.size(); ++i) {
        const auto &p = base.placements[i];
        const auto &q = masked.placements[i];
        EXPECT_EQ(p.tile, q.tile);
        EXPECT_EQ(p.remoteTile, q.remoteTile);
        EXPECT_EQ(p.cycles, q.cycles);
        EXPECT_EQ(p.accel.has_value(), q.accel.has_value());
    }
    EXPECT_EQ(base.snoc.packRegisters(), masked.snoc.packRegisters());
    EXPECT_EQ(base.bottleneckCycles(), masked.bottleneckCycles());
}

TEST(Restitch, EverySinglePatchFailureIsStitchedAround)
{
    auto arch = core::StitchArch::standard();
    auto kernels = sixteenHungryKernels();
    for (TileId dead = 0; dead < numTiles; ++dead) {
        auto health =
            ArchHealth::fromPlan(FaultPlan::patchFailure(dead));
        auto plan = compiler::stitchApplication(kernels, arch, health);
        ASSERT_EQ(plan.placements.size(), kernels.size());
        for (const auto &p : plan.placements) {
            if (!p.accel)
                continue;
            EXPECT_NE(p.tile, dead)
                << "kernel placed on dead patch " << dead;
            if (p.accel->type == AccelTarget::Type::FusedPair) {
                EXPECT_NE(p.remoteTile, dead)
                    << "fusion partner on dead patch " << dead;
            }
        }
        std::string why;
        EXPECT_TRUE(plan.snoc.validate(&why)) << why;
    }
}

TEST(Restitch, EveryLinkFailureIsRoutedAround)
{
    auto arch = core::StitchArch::standard();
    auto kernels = sixteenHungryKernels();
    for (const auto &link : allSnocLinks()) {
        auto health =
            ArchHealth::fromPlan(FaultPlan::linkFailure(link));
        auto plan = compiler::stitchApplication(kernels, arch, health);
        // plan.snoc carries the link-down mask, so validate() proves
        // no fusion path crosses the failed link.
        std::string why;
        EXPECT_TRUE(plan.snoc.validate(&why))
            << link.name() << ": " << why;
    }
}

TEST(Restitch, AllPatchesDeadFallsBackToSoftware)
{
    auto arch = core::StitchArch::standard();
    auto kernels = sixteenHungryKernels();
    ArchHealth health = ArchHealth::healthy();
    health.patchOk.fill(false);
    auto plan = compiler::stitchApplication(kernels, arch, health);
    for (const auto &p : plan.placements)
        EXPECT_FALSE(p.accel.has_value());
    EXPECT_EQ(plan.bottleneckCycles(), 1000u);
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

TEST(Report, CarriesTerminationAndDiagnostics)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    params.faults = FaultPlan::messageDrop(1.0, 5);
    sim::System system(params);
    loadPingPong(system);
    auto stats = system.run();

    auto doc = sim::runReport(stats);
    EXPECT_EQ(doc.get("termination").asString(), "deadlock");
    ASSERT_TRUE(doc.has("blocked_tiles"));
    ASSERT_TRUE(doc.has("injected_faults"));

    // Round-trips through the serializer.
    auto parsed = obs::Json::parse(doc.dump(2));
    EXPECT_EQ(parsed.get("termination").asString(), "deadlock");
}

TEST(Report, StitchPlanJsonDescribesPlacements)
{
    auto arch = core::StitchArch::standard();
    auto kernels = sixteenHungryKernels();
    auto plan = compiler::stitchApplication(kernels, arch);
    auto doc = sim::stitchPlanJson(plan);
    EXPECT_TRUE(doc.has("bottleneck_cycles"));
    EXPECT_TRUE(doc.has("snoc_registers"));
    ASSERT_TRUE(doc.has("placements"));
    EXPECT_EQ(doc.get("placements").size(), kernels.size());
}

} // namespace
} // namespace stitch::fault

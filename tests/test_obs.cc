/** @file Observability-layer tests: stats registry, JSON round-trip,
 *  run reports, and the event tracer (parity + golden ping-pong
 *  trace). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "compiler/rewriter.hh"
#include "isa/assembler.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace stitch::obs
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

compiler::RewrittenProgram
wrap(isa::Program prog)
{
    compiler::RewrittenProgram binary;
    binary.program = std::move(prog);
    return binary;
}

/** Load/run the 2-tile ping-pong of test_system.cc. */
sim::RunStats
runPingPong(sim::System &system)
{
    Assembler a("ping");
    a.li(t0, 42);
    a.li(t1, 1);
    a.send(t0, t1, 0);
    a.recv(t2, t1, 0);
    a.li(t3, 0x2000);
    a.sw(t2, t3, 0);
    a.halt();

    Assembler b("pong");
    b.li(t1, 0);
    b.recv(t2, t1, 0);
    b.addi(t2, t2, 1);
    b.send(t2, t1, 0);
    b.halt();

    system.loadProgram(0, wrap(a.finish()));
    system.loadProgram(1, wrap(b.finish()));
    return system.run();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(Registry, PathsAreUnique)
{
    Registry registry;
    StatGroup a, b;
    registry.add("tile0.core", a);
    EXPECT_THROW(registry.add("tile0.core", b), FatalError);
    EXPECT_THROW(registry.add("", a), FatalError);
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.find("tile0.core"), &a);
    EXPECT_EQ(registry.find("tile0.dcache"), nullptr);

    registry.remove("tile0.core");
    EXPECT_EQ(registry.find("tile0.core"), nullptr);
    registry.add("tile0.core", b); // path free again after remove
}

TEST(Registry, JsonDumpRoundTrip)
{
    Registry registry;
    StatGroup core, dcache, noc;
    core.counter("instructions") = 1234;
    core.counter("idle") = 0;
    dcache.counter("misses") = 7;
    noc.counter("packets") = 99;
    registry.add("tile3.core", core);
    registry.add("tile3.dcache", dcache);
    registry.add("noc", noc);

    Json parsed = Json::parse(registry.toJson().dump(2));
    EXPECT_EQ(parsed.get("tile3").get("core").get("instructions")
                  .asUint(),
              1234u);
    EXPECT_EQ(parsed.get("tile3").get("core").get("idle").asUint(),
              0u);
    EXPECT_EQ(parsed.get("tile3").get("dcache").get("misses").asUint(),
              7u);
    EXPECT_EQ(parsed.get("noc").get("packets").asUint(), 99u);

    Json skipped = Json::parse(registry.toJson(true).dump());
    EXPECT_FALSE(skipped.get("tile3").get("core").has("idle"));
}

TEST(Report, RoundTripCarriesBreakdownAndLoadedFlags)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    auto stats = runPingPong(system);

    Json parsed = Json::parse(
        sim::runReport(stats, &system.registry()).dump(2));
    EXPECT_EQ(parsed.get("schema").asString(), "stitch-run-report");
    EXPECT_EQ(parsed.get("version").asUint(),
              static_cast<std::uint64_t>(sim::runReportVersion));
    EXPECT_EQ(parsed.get("totals").get("makespan_cycles").asUint(),
              stats.makespan);
    EXPECT_EQ(parsed.get("totals").get("messages").asUint(), 2u);

    // Loaded tiles carry the stall breakdown; unloaded tiles carry
    // only their loaded=false marker (and zero utilization).
    const Json &tiles = parsed.get("tiles");
    ASSERT_EQ(tiles.size(), static_cast<std::size_t>(numTiles));
    EXPECT_TRUE(tiles.at(0).get("loaded").asBool());
    EXPECT_TRUE(tiles.at(0).has("recv_wait_cycles"));
    EXPECT_EQ(tiles.at(0).get("msgs_sent").asUint(), 1u);
    EXPECT_FALSE(tiles.at(2).get("loaded").asBool());
    EXPECT_FALSE(tiles.at(2).has("cycles"));
    EXPECT_EQ(stats.perTile[2].utilization(stats.makespan), 0.0);

    // The embedded registry dump matches the report's own numbers.
    EXPECT_EQ(parsed.get("stats").get("noc").get("packets").asUint(),
              2u);
}

TEST(Report, AggregatesExcludeUnloadedTiles)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    auto stats = runPingPong(system);

    std::uint64_t loadedInstructions = 0;
    for (const auto &ts : stats.perTile)
        if (ts.loaded)
            loadedInstructions += ts.instructions;
    EXPECT_EQ(stats.instructions, loadedInstructions);
    EXPECT_GT(stats.instructions, 0u);
}

TEST(Tracer, OnOffParity)
{
    ASSERT_FALSE(Tracer::enabled());
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;

    sim::System off(params);
    auto offStats = runPingPong(off);

    std::string path = testing::TempDir() + "parity_trace.json";
    Tracer::instance().start(path);
    sim::System on(params);
    auto onStats = runPingPong(on);
    Tracer::instance().stop();
    ASSERT_FALSE(Tracer::enabled());
    std::remove(path.c_str());

    EXPECT_EQ(onStats.makespan, offStats.makespan);
    EXPECT_EQ(onStats.instructions, offStats.instructions);
    EXPECT_EQ(onStats.messages, offStats.messages);
    for (int t = 0; t < numTiles; ++t) {
        auto i = static_cast<std::size_t>(t);
        EXPECT_EQ(onStats.perTile[i].cycles, offStats.perTile[i].cycles)
            << "tile " << t;
        EXPECT_EQ(onStats.perTile[i].recvWaitCycles,
                  offStats.perTile[i].recvWaitCycles)
            << "tile " << t;
    }
}

TEST(Tracer, PingPongGoldenEvents)
{
    std::string path = testing::TempDir() + "pingpong_trace.json";
    Tracer::instance().start(path);
    ASSERT_TRUE(Tracer::enabled());
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    runPingPong(system);
    Tracer::instance().stop();

    Json doc = Json::parse(slurp(path));
    std::remove(path.c_str());
    const Json &events = doc.get("traceEvents");

    // The golden event sequence of the 2-tile ping-pong: both sides
    // send once and receive once, and both packets cross the NoC.
    int sends[2] = {0, 0}, recvs[2] = {0, 0}, pkts = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &e = events.at(i);
        const std::string &name = e.get("name").asString();
        auto tid = e.get("tid").asUint();
        if (name == "SEND" && tid < 2)
            ++sends[tid];
        if (name == "RECV" && tid < 2)
            ++recvs[tid];
        if (name == "pkt" && e.get("pid").asUint() == Tracer::pidNoc)
            ++pkts;
        if (name == "SEND" && tid == 0) {
            // tile0's SEND carries its destination and tag.
            EXPECT_EQ(e.get("args").get("dst").asUint(), 1u);
            EXPECT_EQ(e.get("args").get("tag").asUint(), 0u);
        }
    }
    EXPECT_EQ(sends[0], 1);
    EXPECT_EQ(sends[1], 1);
    EXPECT_EQ(recvs[0], 1);
    EXPECT_EQ(recvs[1], 1);
    EXPECT_EQ(pkts, 2);
}

/**
 * Abnormal terminations must leave a loadable trace even when the
 * harness never reaches Tracer::stop(): the simulator flushes a
 * provisional tail on deadlock / instruction-limit exits. Regression
 * test for traces truncated by dying harnesses.
 */
TEST(Tracer, DeadlockedRunFlushesAValidTrace)
{
    std::string path = testing::TempDir() + "deadlock_trace.json";
    Tracer::instance().start(path);

    // tile0 RECVs from tile1, which never sends: guaranteed deadlock.
    Assembler a("stuck");
    a.li(t1, 1);
    a.recv(t2, t1, 0);
    a.halt();
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    system.loadProgram(0, wrap(a.finish()));
    auto stats = system.run();
    ASSERT_EQ(stats.termination, fault::Termination::Deadlock);

    // Parse the file as-is — no stop() yet, as if the process died.
    Json doc = Json::parse(slurp(path));
    EXPECT_GT(doc.get("traceEvents").size(), 0u);

    // A clean stop afterwards must still produce a valid document.
    Tracer::instance().stop();
    Json closed = Json::parse(slurp(path));
    EXPECT_EQ(closed.get("traceEvents").size(),
              doc.get("traceEvents").size());
    std::remove(path.c_str());
}

TEST(Tracer, InstructionLimitRunFlushesAValidTrace)
{
    std::string path = testing::TempDir() + "limit_trace.json";
    Tracer::instance().start(path);

    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    auto stats = [&] {
        Assembler a("ping");
        a.li(t0, 42);
        a.li(t1, 1);
        a.send(t0, t1, 0);
        a.recv(t2, t1, 0);
        a.halt();
        Assembler b("pong");
        b.li(t1, 0);
        b.recv(t2, t1, 0);
        b.send(t2, t1, 0);
        b.halt();
        system.loadProgram(0, wrap(a.finish()));
        system.loadProgram(1, wrap(b.finish()));
        return system.run(3); // budget far below completion
    }();
    ASSERT_EQ(stats.termination, fault::Termination::InstructionLimit);

    Json doc = Json::parse(slurp(path));
    EXPECT_GE(doc.get("traceEvents").size(), 1u);

    // The provisional tail must not break subsequent recording: a
    // completed run appends its events after the retracted tail.
    sim::System more(params);
    runPingPong(more);
    Tracer::instance().stop();
    Json final = Json::parse(slurp(path));
    EXPECT_GT(final.get("traceEvents").size(),
              doc.get("traceEvents").size());
    std::remove(path.c_str());
}

TEST(Tracer, StartWhileRecordingIsFatal)
{
    std::string path = testing::TempDir() + "dup_trace.json";
    Tracer::instance().start(path);
    EXPECT_THROW(Tracer::instance().start(path), FatalError);
    Tracer::instance().stop();
    std::remove(path.c_str());
}

} // namespace
} // namespace stitch::obs

/** @file Golden-model tests: run each kernel's SW32 assembly on the
 *  simulator and compare the final memory against the C++ reference
 *  implementation. */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "kernels/catalog.hh"
#include "kernels/golden.hh"
#include "mem/addrmap.hh"

namespace stitch::kernels
{
namespace
{

/** Run a standalone kernel build and expose its memory. */
struct KernelRun
{
    explicit KernelRun(const std::string &name)
        : core(0, memory, nullptr, nullptr)
    {
        auto input = kernelByName(name).build({});
        core.loadProgram(input.program);
        core.runToHalt();
    }

    std::vector<golden::I32>
    spmWords(Addr offset, std::size_t count) const
    {
        std::vector<golden::I32> out;
        for (std::size_t i = 0; i < count; ++i)
            out.push_back(static_cast<golden::I32>(
                memory.spmPeek(offset + static_cast<Addr>(4 * i))));
        return out;
    }

    mem::TileMemory memory;
    cpu::Core core;
};

TEST(KernelGolden, Fft)
{
    KernelRun run("fft");
    auto re = golden::fftInputRe();
    auto im = golden::fftInputIm();
    golden::fft64(re, im, false);
    EXPECT_EQ(run.spmWords(0, 64), re);
    EXPECT_EQ(run.spmWords(256, 64), im);
}

TEST(KernelGolden, Ifft)
{
    KernelRun run("ifft");
    auto re = golden::fftInputRe();
    auto im = golden::fftInputIm();
    golden::fft64(re, im, true);
    golden::I32 acc = golden::ifftPost(re, im);
    EXPECT_EQ(run.spmWords(0, 64), re);
    EXPECT_EQ(run.spmWords(256, 64), im);
    EXPECT_EQ(run.spmWords(768, 1)[0], acc);
}

TEST(KernelGolden, Fir)
{
    KernelRun run("fir");
    auto y = golden::fir(golden::firInput(), golden::firCoeffs());
    y.resize(48); // the kernel computes one 48-sample window
    EXPECT_EQ(run.spmWords(1088, 48), y);
}

TEST(KernelGolden, Filter)
{
    KernelRun run("filter");
    auto s = golden::filterInput();
    golden::filter(s, golden::filterGains());
    EXPECT_EQ(run.spmWords(0, 64), s);
}

TEST(KernelGolden, UpdateFeature)
{
    KernelRun run("update");
    auto feat = golden::updateFeatureInit();
    golden::updateFeature(feat, golden::updateRe(),
                          golden::updateIm());
    EXPECT_EQ(run.spmWords(0, 64), feat);
}

TEST(KernelGolden, Conv2d)
{
    KernelRun run("conv2d");
    auto out = golden::conv2d(golden::conv2dInput(),
                              golden::conv2dKernel());
    EXPECT_EQ(run.spmWords(16 * 16 * 4 + 36, 196), out);
}

TEST(KernelGolden, Conv2dSmall)
{
    KernelRun run("conv2d10");
    auto out = golden::conv2dN(golden::conv2dInputN(10),
                               golden::conv2dKernel(), 10);
    EXPECT_EQ(run.spmWords(10 * 10 * 4 + 36, 64), out);
}

TEST(KernelGolden, Sobel)
{
    KernelRun run("sobel");
    auto out = golden::sobel(golden::sobelInput());
    EXPECT_EQ(run.spmWords(1024, 196), out);
}

TEST(KernelGolden, Pooling)
{
    KernelRun run("pooling");
    auto out = golden::pooling(golden::poolingInput());
    EXPECT_EQ(run.spmWords(1024, 64), out);
}

TEST(KernelGolden, Matmul)
{
    KernelRun run("matmul");
    auto c = golden::matmul(golden::matmulA(), golden::matmulB());
    EXPECT_EQ(run.spmWords(1152, 144), c);
}

TEST(KernelGolden, Fc)
{
    KernelRun run("fc");
    auto y = golden::fc(golden::fcInput(), golden::fcWeights(),
                        golden::fcBias());
    EXPECT_EQ(run.spmWords(2240, 16), y);
}

TEST(KernelGolden, Dtw)
{
    KernelRun run("dtw");
    auto d = golden::dtw(golden::dtwSeqA(), golden::dtwSeqB());
    EXPECT_EQ(run.spmWords(520, 1)[0], d);
    EXPECT_GT(d, 0);
}

TEST(KernelGolden, Aes)
{
    KernelRun run("aes");
    auto out = golden::aesEncrypt(golden::aesInput(),
                                  golden::aesTable(),
                                  golden::aesRoundKeys());
    EXPECT_EQ(run.spmWords(1204, 8), out);
    EXPECT_NE(out, golden::aesInput()); // it actually ciphered
}

TEST(KernelGolden, Histogram)
{
    KernelRun run("histogram");
    auto bins = golden::histogram(golden::histogramInput());
    EXPECT_EQ(run.spmWords(0, 64), bins);
    golden::I32 total = 0;
    for (auto b : bins)
        total += b;
    EXPECT_EQ(total, 256);
}

TEST(KernelGolden, Svm)
{
    KernelRun run("svm");
    auto scores = golden::svmScores(golden::svmInput(),
                                    golden::svmWeights(),
                                    golden::svmBias());
    EXPECT_EQ(run.spmWords(2336, 8), scores);
}

TEST(KernelGolden, Astar)
{
    KernelRun run("astar");
    auto dist = golden::astarDistances(golden::astarCosts());
    EXPECT_EQ(run.spmWords(1024, 256), dist);
    // The corner is reachable.
    EXPECT_LT(dist[255], 1 << 28);
}

TEST(KernelGolden, Crc)
{
    KernelRun run("crc");
    auto crc = golden::crc32(golden::crcInput(), golden::crcTable());
    EXPECT_EQ(run.spmWords(2048, 1)[0], crc);
}

TEST(KernelGolden, CrcTableMatchesKnownVector)
{
    // Standard CRC-32 sanity: table entry 1 of the reflected
    // 0xEDB88320 polynomial.
    auto table = golden::crcTable();
    EXPECT_EQ(static_cast<Word>(table[0]), 0u);
    EXPECT_EQ(static_cast<Word>(table[1]), 0x77073096u);
    EXPECT_EQ(static_cast<Word>(table[255]), 0x2d02ef8du);
}

TEST(KernelGolden, Viterbi)
{
    KernelRun run("viterbi");
    auto m = golden::viterbi(golden::viterbiTrans(),
                             golden::viterbiEmit(),
                             golden::viterbiObs());
    EXPECT_EQ(run.spmWords(256, 4), m);
}

TEST(KernelGolden, Kmeans)
{
    KernelRun run("kmeans");
    auto assign = golden::kmeansAssign(golden::kmeansPoints(),
                                       golden::kmeansCentroids());
    EXPECT_EQ(run.spmWords(544, 64), assign);
    for (auto j : assign) {
        EXPECT_GE(j, 0);
        EXPECT_LT(j, 4);
    }
}

TEST(KernelGolden, Iir)
{
    KernelRun run("iir");
    auto y = golden::iir(golden::iirInput(), golden::iirCoeffs());
    EXPECT_EQ(run.spmWords(1024, 128), y);
}

TEST(KernelCatalog, AllEntriesBuild)
{
    for (const auto &factory : kernelCatalog()) {
        auto input = factory.build({});
        EXPECT_FALSE(input.program.code().empty()) << factory.name;
        EXPECT_FALSE(input.outputs.empty()) << factory.name;
    }
    EXPECT_EQ(kernelCatalog().size(), 20u);
}

TEST(KernelCatalog, UnknownNameIsFatal)
{
    EXPECT_THROW(kernelByName("nope"), FatalError);
}

TEST(KernelCatalog, NoKernelTouchesScratchRegisters)
{
    for (const auto &factory : kernelCatalog()) {
        auto input = factory.build({1, 1, 2});
        for (const auto &in : input.program.code()) {
            EXPECT_LT(in.rd0, compiler::firstScratchReg)
                << factory.name;
            EXPECT_LT(in.rs0, compiler::firstScratchReg)
                << factory.name;
        }
    }
}

TEST(KernelPipeline, SpmDataFitsTheScratchpad)
{
    for (const auto &factory : kernelCatalog()) {
        auto input = factory.build({});
        for (const auto &seg : input.program.data()) {
            if (!mem::isSpmAddr(seg.base))
                continue;
            EXPECT_LE(seg.base + seg.bytes.size(),
                      mem::spmBase + mem::spmSize)
                << factory.name;
        }
    }
}

} // namespace
} // namespace stitch::kernels

/** @file Core semantics and timing tests. */

#include <gtest/gtest.h>

#include <optional>

#include "common/logging.hh"
#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "mem/addrmap.hh"

namespace stitch
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

/** Hub used to test SEND/RECV plumbing. */
class RecordingHub : public cpu::MessageHub
{
  public:
    Cycles
    send(TileId src, TileId dst, int tag, Word value, Cycles) override
    {
        sent.push_back({src, dst, tag, value});
        return 2;
    }

    std::optional<std::pair<Word, Cycles>>
    tryRecv(TileId, TileId, int) override
    {
        if (!pending)
            return std::nullopt;
        auto out = *pending;
        pending.reset();
        return out;
    }

    struct Sent
    {
        TileId src;
        TileId dst;
        int tag;
        Word value;
    };
    std::vector<Sent> sent;
    std::optional<std::pair<Word, Cycles>> pending;
};

struct CoreFixture
{
    mem::TileMemory memory;
    RecordingHub hub;
    cpu::Core core{0, memory, nullptr, &hub};

    Cycles
    run(Assembler &a)
    {
        core.loadProgram(a.finish());
        return core.runToHalt();
    }
};

TEST(CoreSemantics, AluOps)
{
    CoreFixture f;
    Assembler a("alu");
    a.li(t0, 21);
    a.li(t1, -3);
    a.add(t2, t0, t1);
    a.sub(t3, t0, t1);
    a.and_(t4, t0, t1);
    a.or_(t5, t0, t1);
    a.xor_(t6, t0, t1);
    a.mul(t7, t0, t1);
    a.slt(t8, t1, t0);
    a.sltu(t9, t1, t0); // -3 unsigned is huge
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.reg(t2), 18u);
    EXPECT_EQ(f.core.reg(t3), 24u);
    EXPECT_EQ(f.core.reg(t4), (21u & 0xfffffffdu));
    EXPECT_EQ(f.core.reg(t5), (21u | 0xfffffffdu));
    EXPECT_EQ(f.core.reg(t6), (21u ^ 0xfffffffdu));
    EXPECT_EQ(static_cast<SWord>(f.core.reg(t7)), -63);
    EXPECT_EQ(f.core.reg(t8), 1u);
    EXPECT_EQ(f.core.reg(t9), 0u);
}

TEST(CoreSemantics, Shifts)
{
    CoreFixture f;
    Assembler a("sh");
    a.li(t0, -16);
    a.li(t1, 2);
    a.sll(t2, t0, t1);
    a.srl(t3, t0, t1);
    a.sra(t4, t0, t1);
    a.slli(t5, t0, 1);
    a.srli(t6, t0, 28);
    a.srai(t7, t0, 31);
    a.halt();
    f.run(a);
    EXPECT_EQ(static_cast<SWord>(f.core.reg(t2)), -64);
    EXPECT_EQ(f.core.reg(t3), 0xfffffff0u >> 2);
    EXPECT_EQ(static_cast<SWord>(f.core.reg(t4)), -4);
    EXPECT_EQ(static_cast<SWord>(f.core.reg(t5)), -32);
    EXPECT_EQ(f.core.reg(t6), 0xfu);
    EXPECT_EQ(f.core.reg(t7), 0xffffffffu);
}

TEST(CoreSemantics, ShiftAmountMasksToFiveBits)
{
    CoreFixture f;
    Assembler a("shm");
    a.li(t0, 1);
    a.li(t1, 33); // 33 & 31 = 1
    a.sll(t2, t0, t1);
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.reg(t2), 2u);
}

TEST(CoreSemantics, R0IsHardZero)
{
    CoreFixture f;
    Assembler a("z");
    a.addi(zero, zero, 55);
    a.add(t0, zero, zero);
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.reg(zero), 0u);
    EXPECT_EQ(f.core.reg(t0), 0u);
}

TEST(CoreSemantics, LoadStoreAndBytes)
{
    CoreFixture f;
    Assembler a("mem");
    a.li(t0, 0x2000);
    a.li(t1, -77);
    a.sw(t1, t0, 4);
    a.lw(t2, t0, 4);
    a.sb(t1, t0, 8);
    a.lb(t3, t0, 8);
    a.halt();
    f.run(a);
    EXPECT_EQ(static_cast<SWord>(f.core.reg(t2)), -77);
    EXPECT_EQ(static_cast<SWord>(f.core.reg(t3)), -77);
}

TEST(CoreSemantics, SpmLoadStore)
{
    CoreFixture f;
    Assembler a("spm");
    a.li(t0, static_cast<std::int32_t>(mem::spmBase));
    a.li(t1, 1234);
    a.sw(t1, t0, 64);
    a.lw(t2, t0, 64);
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.reg(t2), 1234u);
    EXPECT_EQ(f.memory.spmPeek(64), 1234u);
}

TEST(CoreSemantics, BranchLoop)
{
    CoreFixture f;
    Assembler a("loop");
    auto loop = a.newLabel();
    a.li(t0, 0);
    a.li(t1, 10);
    a.bind(loop);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, loop);
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.reg(t0), 10u);
}

TEST(CoreSemantics, AllBranchConditions)
{
    CoreFixture f;
    Assembler a("br");
    // Each taken branch skips an addi that would poison the result.
    auto mk = [&](auto emitBranch) {
        auto skip = a.newLabel();
        emitBranch(skip);
        a.addi(s0, s0, 1); // executed only when NOT taken
        a.bind(skip);
    };
    a.li(t0, -1);
    a.li(t1, 1);
    mk([&](isa::Label l) { a.beq(t0, t0, l); });  // taken
    mk([&](isa::Label l) { a.bne(t0, t1, l); });  // taken
    mk([&](isa::Label l) { a.blt(t0, t1, l); });  // taken (signed)
    mk([&](isa::Label l) { a.bge(t1, t0, l); });  // taken
    mk([&](isa::Label l) { a.bltu(t1, t0, l); }); // taken (unsigned)
    mk([&](isa::Label l) { a.bgeu(t0, t1, l); }); // taken
    mk([&](isa::Label l) { a.beq(t0, t1, l); });  // NOT taken
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.reg(s0), 1u);
}

TEST(CoreSemantics, CallAndReturn)
{
    CoreFixture f;
    Assembler a("call");
    auto fn = a.newLabel();
    auto end = a.newLabel();
    a.li(t0, 1);
    a.jal(ra, fn);
    a.addi(t0, t0, 100);
    a.jmp(end);
    a.bind(fn);
    a.addi(t0, t0, 10);
    a.jalr(zero, ra, 0);
    a.bind(end);
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.reg(t0), 111u);
}

TEST(CoreSemantics, LuiBuildsUpperBits)
{
    CoreFixture f;
    Assembler a("lui");
    a.li(t0, 0x12345678);
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.reg(t0), 0x12345678u);
}

TEST(CoreTiming, OneCyclePerSimpleInstr)
{
    CoreFixture f;
    Assembler a("t");
    for (int i = 0; i < 20; ++i)
        a.addi(t0, t0, 1);
    a.halt();
    Cycles total = f.run(a);
    // 21 instructions (84 bytes of code) + two cold I-cache lines.
    EXPECT_EQ(total, 21u + 60u);
}

TEST(CoreTiming, MulTakesFourCycles)
{
    CoreFixture f;
    Assembler a("t");
    a.mul(t0, t1, t2);
    a.halt();
    EXPECT_EQ(f.run(a), 2u + 3u + 30u);
}

TEST(CoreTiming, TakenBranchPenalty)
{
    CoreFixture f1, f2;
    Assembler taken("t1");
    auto l1 = taken.newLabel();
    taken.beq(zero, zero, l1);
    taken.bind(l1);
    taken.halt();

    Assembler notTaken("t2");
    auto l2 = notTaken.newLabel();
    notTaken.bne(zero, zero, l2);
    notTaken.bind(l2);
    notTaken.halt();

    EXPECT_EQ(f1.run(taken), f2.run(notTaken) + 1);
}

TEST(CoreTiming, DcacheMissStalls)
{
    CoreFixture f;
    Assembler a("t");
    a.li(t0, 0x4000);
    a.lw(t1, t0, 0); // cold: +30
    a.lw(t2, t0, 4); // hit
    a.halt();
    // 4 instrs + 30 icache + 30 dcache.
    EXPECT_EQ(f.run(a), 4u + 30u + 30u);
}

TEST(CoreTiming, SpmAccessAddsNothing)
{
    CoreFixture f;
    Assembler a("t");
    a.li(t0, static_cast<std::int32_t>(mem::spmBase));
    a.lw(t1, t0, 0);
    a.halt();
    EXPECT_EQ(f.run(a), 3u + 30u);
}

TEST(CoreMessaging, SendReachesHub)
{
    CoreFixture f;
    Assembler a("s");
    a.li(t0, 42);
    a.li(t1, 7);
    a.send(t0, t1, 3);
    a.halt();
    f.run(a);
    ASSERT_EQ(f.hub.sent.size(), 1u);
    EXPECT_EQ(f.hub.sent[0].dst, 7);
    EXPECT_EQ(f.hub.sent[0].tag, 3);
    EXPECT_EQ(f.hub.sent[0].value, 42u);
}

TEST(CoreMessaging, RecvBlocksWithoutMessage)
{
    CoreFixture f;
    Assembler a("r");
    a.recv(t0, zero, 0);
    a.halt();
    f.core.loadProgram(a.finish());
    EXPECT_EQ(f.core.step(), cpu::StepResult::Blocked);
    // Retrying after a message arrives succeeds and jumps time.
    f.hub.pending = {Word{99}, Cycles{500}};
    EXPECT_EQ(f.core.step(), cpu::StepResult::Ok);
    EXPECT_EQ(f.core.reg(t0), 99u);
    EXPECT_GE(f.core.time(), 500u);
}

TEST(CoreMessaging, BlockedRecvRetiresNothing)
{
    CoreFixture f;
    Assembler a("r");
    a.recv(t0, zero, 0);
    a.halt();
    f.core.loadProgram(a.finish());
    f.core.step();
    EXPECT_EQ(f.core.instructionsRetired(), 0u);
}

TEST(CoreMisc, XbarConfigRegisterCapturesStores)
{
    CoreFixture f;
    Assembler a("x");
    a.li(t0, static_cast<std::int32_t>(mem::xbarConfigAddr));
    a.li(t1, 0x2d6bf);
    a.sw(t1, t0, 0);
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.xbarConfigReg(), 0x2d6bfu);
}

TEST(CoreMisc, ExecutionCountsProfileBlocks)
{
    CoreFixture f;
    Assembler a("p");
    auto loop = a.newLabel();
    a.li(t0, 0);     // idx 0
    a.li(t1, 5);     // idx 1
    a.bind(loop);
    a.addi(t0, t0, 1); // idx 2, runs 5 times
    a.blt(t0, t1, loop);
    a.halt();
    f.run(a);
    EXPECT_EQ(f.core.executionCounts()[0], 1u);
    EXPECT_EQ(f.core.executionCounts()[2], 5u);
}

TEST(CoreMisc, RunawayLoopIsFatal)
{
    CoreFixture f;
    Assembler a("inf");
    auto loop = a.newLabel();
    a.bind(loop);
    a.jmp(loop);
    f.core.loadProgram(a.finish());
    EXPECT_THROW(f.core.runToHalt(1000), FatalError);
}

TEST(CoreMisc, CustWithoutHandlerIsFatal)
{
    mem::TileMemory memory;
    cpu::Core core(0, memory, nullptr, nullptr);
    isa::Assembler a("c");
    isa::Instr cust;
    cust.op = isa::Opcode::Cust;
    a.emit(cust);
    a.halt();
    auto prog = a.finish();
    prog.addIseConfig(0);
    core.loadProgram(prog);
    EXPECT_THROW(core.runToHalt(), FatalError);
}

TEST(CoreMisc, DataSegmentsLoadIntoSpmAndDram)
{
    mem::TileMemory memory;
    cpu::Core core(0, memory, nullptr, nullptr);
    isa::Assembler a("d");
    a.halt();
    auto prog = a.finish();
    prog.addDataWords(0x2000, {0xaa, 0xbb});
    prog.addDataWords(mem::spmBase + 8, {0xcc});
    core.loadProgram(prog);
    EXPECT_EQ(memory.backing().readWord(0x2004), 0xbbu);
    EXPECT_EQ(memory.spmPeek(8), 0xccu);
}

} // namespace
} // namespace stitch

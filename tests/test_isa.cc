/** @file Encoder/decoder and Program-container tests for SW32. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/isa.hh"
#include "isa/program.hh"

namespace stitch::isa
{
namespace
{

Instr
sampleInstrFor(Opcode op, Rng &rng)
{
    Instr in;
    in.op = op;
    auto reg = [&] { return static_cast<RegId>(rng.range(0, 31)); };
    switch (formatOf(op)) {
      case Format::N:
        break;
      case Format::R:
        in.rd0 = reg();
        in.rs0 = reg();
        in.rs1 = reg();
        break;
      case Format::I:
        in.rd0 = reg();
        in.rs0 = reg();
        in.imm = static_cast<std::int32_t>(rng.range(-32768, 32767));
        break;
      case Format::S:
      case Format::B:
        in.rs0 = reg();
        in.rs1 = reg();
        in.imm = static_cast<std::int32_t>(rng.range(-32768, 32767));
        break;
      case Format::J:
        in.rd0 = reg();
        in.imm = static_cast<std::int32_t>(
            rng.range(-(1 << 20), (1 << 20) - 1));
        break;
      case Format::C:
        in.rd0 = reg();
        in.rd1 = reg();
        in.rs0 = reg();
        in.rs1 = reg();
        in.rs2 = reg();
        in.rs3 = reg();
        in.cfg = static_cast<std::uint16_t>(rng.range(0, 4095));
        break;
    }
    return in;
}

class EncodeRoundTrip : public ::testing::TestWithParam<int>
{
};

/** Property: encode/decode is the identity for every opcode. */
TEST_P(EncodeRoundTrip, AllFieldsSurvive)
{
    auto op = static_cast<Opcode>(GetParam());
    Rng rng(1000 + GetParam());
    for (int iter = 0; iter < 50; ++iter) {
        Instr in = sampleInstrFor(op, rng);
        std::vector<Word> image;
        int words = encode(in, image);
        EXPECT_EQ(words, in.wordSize());
        ASSERT_EQ(image.size(), static_cast<std::size_t>(words));
        int consumed = 0;
        Instr back = decode(image, 0, &consumed);
        EXPECT_EQ(consumed, words);
        EXPECT_EQ(back, in);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodeRoundTrip,
    ::testing::Range(0, static_cast<int>(Opcode::NumOpcodes)),
    [](const ::testing::TestParamInfo<int> &info) {
        return mnemonic(static_cast<Opcode>(info.param));
    });

TEST(IsaEncode, ImmediateOutOfRangeIsFatal)
{
    Instr in;
    in.op = Opcode::Addi;
    in.imm = 40000;
    std::vector<Word> image;
    EXPECT_THROW(encode(in, image), FatalError);
}

TEST(IsaEncode, CustIsTwoWords)
{
    Instr in;
    in.op = Opcode::Cust;
    EXPECT_EQ(in.wordSize(), 2);
    std::vector<Word> image;
    EXPECT_EQ(encode(in, image), 2);
}

TEST(IsaDecode, UndefinedOpcodeIsFatal)
{
    std::vector<Word> image = {
        static_cast<Word>(Opcode::NumOpcodes) << 26};
    EXPECT_THROW(decode(image, 0, nullptr), FatalError);
}

TEST(IsaClassify, Groups)
{
    EXPECT_TRUE(isAluRegOp(Opcode::Add));
    EXPECT_TRUE(isAluRegOp(Opcode::Sltu));
    EXPECT_FALSE(isAluRegOp(Opcode::Addi));
    EXPECT_TRUE(isAluImmOp(Opcode::Addi));
    EXPECT_TRUE(isAluImmOp(Opcode::Slti));
    EXPECT_FALSE(isAluImmOp(Opcode::Lui));
    EXPECT_TRUE(isMemOp(Opcode::Lw));
    EXPECT_TRUE(isMemOp(Opcode::Sb));
    EXPECT_FALSE(isMemOp(Opcode::Add));
    EXPECT_TRUE(isControlOp(Opcode::Beq));
    EXPECT_TRUE(isControlOp(Opcode::Jal));
    EXPECT_TRUE(isControlOp(Opcode::Halt));
    EXPECT_FALSE(isControlOp(Opcode::Send));
}

TEST(Program, WordAddressing)
{
    Program p("t");
    Instr add;
    add.op = Opcode::Add;
    Instr cust;
    cust.op = Opcode::Cust;
    EXPECT_EQ(p.append(add), 0u);
    EXPECT_EQ(p.append(cust), 1u);
    EXPECT_EQ(p.append(add), 3u); // CUST occupies two words
    EXPECT_EQ(p.wordCount(), 4u);
    EXPECT_EQ(p.wordAddrOf(0), 0u);
    EXPECT_EQ(p.wordAddrOf(1), 1u);
    EXPECT_EQ(p.wordAddrOf(2), 3u);
    EXPECT_EQ(p.indexOfWordAddr(3), 2u);
    EXPECT_THROW(p.indexOfWordAddr(2), FatalError); // mid-CUST
}

TEST(Program, ImageRoundTrip)
{
    Rng rng(99);
    Program p("round");
    for (int i = 0; i < 40; ++i) {
        auto op = static_cast<Opcode>(
            rng.range(0, static_cast<int>(Opcode::NumOpcodes) - 1));
        p.append(sampleInstrFor(op, rng));
    }
    auto image = p.encodeImage();
    EXPECT_EQ(image.size(), p.wordCount());
    Program q = Program::fromImage("round", image);
    ASSERT_EQ(q.code().size(), p.code().size());
    for (std::size_t i = 0; i < p.code().size(); ++i)
        EXPECT_EQ(q.code()[i], p.code()[i]) << "instr " << i;
}

TEST(Program, DataWordsAreLittleEndian)
{
    Program p("data");
    p.addDataWords(0x100, {0x11223344u});
    ASSERT_EQ(p.data().size(), 1u);
    const auto &seg = p.data()[0];
    EXPECT_EQ(seg.base, 0x100u);
    ASSERT_EQ(seg.bytes.size(), 4u);
    EXPECT_EQ(seg.bytes[0], 0x44);
    EXPECT_EQ(seg.bytes[3], 0x11);
}

TEST(Program, ListingMentionsEveryMnemonic)
{
    Program p("list");
    Instr mul;
    mul.op = Opcode::Mul;
    mul.rd0 = 3;
    p.append(mul);
    auto text = p.listing();
    EXPECT_NE(text.find("mul"), std::string::npos);
    EXPECT_NE(text.find("r3"), std::string::npos);
}

TEST(Program, IseTableIndices)
{
    Program p("ise");
    EXPECT_EQ(p.addIseConfig(0xabc), 0u);
    EXPECT_EQ(p.addIseConfig(0xdef), 1u);
    EXPECT_EQ(p.iseTable()[1], 0xdefu);
}

} // namespace
} // namespace stitch::isa

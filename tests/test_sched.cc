/** @file Scheduler differential tests: the event-driven slice
 *  scheduler must be observably identical to the single-step
 *  reference (reports, stats, terminations), the run queue must
 *  reproduce the linear scan's pick order, and sweep results must
 *  not depend on the worker count. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "apps/app_runner.hh"
#include "isa/assembler.hh"
#include "sim/report.hh"
#include "sim/sched.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

namespace stitch::sim
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

compiler::RewrittenProgram
wrap(isa::Program prog)
{
    compiler::RewrittenProgram binary;
    binary.program = std::move(prog);
    return binary;
}

/** The v3 run-report document an app run would write to disk. */
std::string
reportOf(const apps::AppRunResult &res)
{
    obs::Json doc = runReport(res.stats);
    if (res.hasPlan)
        doc.set("stitch_plan", stitchPlanJson(res.plan));
    if (!res.statsDump.isNull())
        doc.set("stats", res.statsDump);
    return doc.dump(2);
}

/** Shared runner: kernel compilations are cached across tests. */
apps::AppRunner &
sharedRunner()
{
    static apps::AppRunner runner(2, 4);
    return runner;
}

/** allApps() returns by value; keep one copy alive for the tests. */
const std::vector<apps::AppSpec> &
testApps()
{
    static const auto apps_ = apps::allApps();
    return apps_;
}

apps::AppRunResult
runWith(const apps::AppSpec &app, apps::AppMode mode,
        SchedulerKind kind, const fault::FaultPlan &faults = {})
{
    apps::RunConfig cfg = sharedRunner().config();
    cfg.scheduler = kind;
    cfg.faults = faults;
    return sharedRunner().run(app, mode, cfg);
}

TEST(SchedulerKind, NamesRoundTrip)
{
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Step), "step");
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Slice), "slice");
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Compiled),
                 "compiled");
    EXPECT_EQ(schedulerKindFromName("step"), SchedulerKind::Step);
    EXPECT_EQ(schedulerKindFromName("slice"), SchedulerKind::Slice);
    EXPECT_EQ(schedulerKindFromName("compiled"),
              SchedulerKind::Compiled);
    EXPECT_THROW(schedulerKindFromName("speculative"),
                 fault::ConfigError);
}

TEST(RunQueue, PopsByTimeThenTileLikeTheLinearScan)
{
    RunQueue q;
    q.push(5, 30);
    q.push(2, 10);
    q.push(9, 10); // same time as tile 2: lower id wins
    q.push(1, 40);
    ASSERT_EQ(q.size(), 4);
    EXPECT_EQ(q.top(), 2);
    q.pop();
    EXPECT_EQ(q.top(), 9);
    q.pop();
    EXPECT_EQ(q.top(), 5);
    q.pop();
    EXPECT_EQ(q.top(), 1);
    q.pop();
    EXPECT_TRUE(q.empty());
}

TEST(RunQueue, UpdateTopReordersLikePopPush)
{
    RunQueue q;
    q.push(0, 100);
    q.push(1, 105);
    q.push(2, 110);
    EXPECT_EQ(q.top(), 0);
    EXPECT_EQ(q.second().tile, 1);
    q.updateTop(107); // tile 0 advanced past tile 1
    EXPECT_EQ(q.top(), 1);
    q.updateTop(107); // equal times: lower id runs first
    EXPECT_EQ(q.top(), 0);
    q.pop();
    EXPECT_EQ(q.top(), 1);
    EXPECT_TRUE(q.contains(2));
    EXPECT_FALSE(q.contains(7));
}

TEST(SchedulerParity, ReportsAreByteIdenticalOnAllApps)
{
    const auto modes = {apps::AppMode::Baseline, apps::AppMode::Locus,
                        apps::AppMode::StitchNoFusion,
                        apps::AppMode::Stitch};
    for (const auto &app : testApps()) {
        for (auto mode : modes) {
            auto step = runWith(app, mode, SchedulerKind::Step);
            for (auto kind :
                 {SchedulerKind::Slice, SchedulerKind::Compiled}) {
                auto other = runWith(app, mode, kind);
                EXPECT_EQ(reportOf(step), reportOf(other))
                    << app.name << " / " << apps::appModeName(mode)
                    << " / " << schedulerKindName(kind);
                EXPECT_EQ(step.stats.makespan, other.stats.makespan);
                EXPECT_EQ(step.stats.instructions,
                          other.stats.instructions);
                EXPECT_EQ(step.stats.messages, other.stats.messages);
            }
        }
    }
}

TEST(SchedulerParity, SeededSoftFaultInjectionIsIdentical)
{
    // An active injector consumes one pseudo-random draw per
    // delivery/CUST in global event order, so the seeded streams —
    // and every downstream number — must line up exactly.
    const auto &app = testApps().front();
    for (const auto &plan :
         {fault::FaultPlan::bitFlips(0.01, 7),
          fault::FaultPlan::messageDelay(0.05, 32, 7)}) {
        auto step =
            runWith(app, apps::AppMode::Stitch, SchedulerKind::Step,
                    plan);
        for (auto kind :
             {SchedulerKind::Slice, SchedulerKind::Compiled}) {
            auto other = runWith(app, apps::AppMode::Stitch, kind,
                                 plan);
            EXPECT_EQ(reportOf(step), reportOf(other))
                << schedulerKindName(kind);
            EXPECT_EQ(step.stats.custBitFlips,
                      other.stats.custBitFlips);
            EXPECT_EQ(step.stats.messagesDelayed,
                      other.stats.messagesDelayed);
        }
    }
}

TEST(SchedulerParity, DroppedMessageDeadlockDiagnosticsMatch)
{
    const auto &app = testApps().front();
    auto plan = fault::FaultPlan::messageDrop(0.5, 11);
    auto step = runWith(app, apps::AppMode::Stitch,
                        SchedulerKind::Step, plan);
    for (auto kind :
         {SchedulerKind::Slice, SchedulerKind::Compiled}) {
        auto other = runWith(app, apps::AppMode::Stitch, kind, plan);
        EXPECT_EQ(reportOf(step), reportOf(other))
            << schedulerKindName(kind);
        EXPECT_EQ(step.stats.termination, other.stats.termination);
        ASSERT_EQ(step.stats.blockedTiles.size(),
                  other.stats.blockedTiles.size());
        for (std::size_t i = 0; i < step.stats.blockedTiles.size();
             ++i)
            EXPECT_EQ(step.stats.blockedTiles[i].tile,
                      other.stats.blockedTiles[i].tile);
    }
}

TEST(SchedulerParity, DeadlockOnBareSystemMatches)
{
    std::vector<std::string> reports;
    for (auto kind : {SchedulerKind::Step, SchedulerKind::Slice,
                      SchedulerKind::Compiled}) {
        SystemParams params;
        params.accel = AccelMode::None;
        params.scheduler = kind;
        System system(params);
        Assembler a("d0");
        a.li(t1, 1);
        a.recv(t2, t1, 0);
        a.halt();
        Assembler b("d1");
        b.li(t1, 0);
        b.recv(t2, t1, 0);
        b.halt();
        system.loadProgram(0, wrap(a.finish()));
        system.loadProgram(1, wrap(b.finish()));
        auto stats = system.run();
        EXPECT_EQ(stats.termination, fault::Termination::Deadlock);
        reports.push_back(runReport(stats).dump(2));
    }
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(reports[0], reports[2]);
}

TEST(SchedulerParity, InstructionLimitCutsAtTheSameInstruction)
{
    // A finite budget forces the slice scheduler into its exact
    // regime, so even the budget's mid-run cutoff point must agree
    // with the single-step reference.
    std::vector<RunStats> runs;
    for (auto kind : {SchedulerKind::Step, SchedulerKind::Slice,
                      SchedulerKind::Compiled}) {
        SystemParams params;
        params.accel = AccelMode::None;
        params.scheduler = kind;
        System system(params);
        for (TileId t = 0; t < 4; ++t) {
            Assembler a("loop");
            auto loop = a.newLabel();
            a.bind(loop);
            a.addi(t0, t0, 1);
            a.jmp(loop);
            a.halt();
            system.loadProgram(t, wrap(a.finish()));
        }
        runs.push_back(system.run(/*maxInstructions=*/1000));
    }
    for (const auto &run : runs) {
        EXPECT_EQ(run.termination,
                  fault::Termination::InstructionLimit);
        EXPECT_EQ(run.instructions, 1000u);
        for (TileId t = 0; t < 4; ++t)
            EXPECT_EQ(run.perTile[t].instructions,
                      runs[0].perTile[t].instructions)
                << "tile " << t;
    }
}

TEST(SchedulerParity, DeadPatchFaultTerminationMatches)
{
    // Healthy plan on faulty hardware: the first CUST landing on the
    // dead patch raises Termination::Fault mid-run. Partial stats are
    // order-sensitive, so the slice scheduler must detect the active
    // injector and fall back to its exact regime.
    const auto &apps_ = testApps();
    const auto &app = apps_[apps_.size() > 2 ? 2 : 0];
    auto plan = fault::FaultPlan::patchFailure(0);
    auto step = runWith(app, apps::AppMode::Stitch,
                        SchedulerKind::Step, plan);
    EXPECT_EQ(step.stats.termination, fault::Termination::Fault);
    for (auto kind :
         {SchedulerKind::Slice, SchedulerKind::Compiled}) {
        auto other = runWith(app, apps::AppMode::Stitch, kind, plan);
        EXPECT_EQ(reportOf(step), reportOf(other))
            << schedulerKindName(kind);
        EXPECT_EQ(step.stats.faultMessage, other.stats.faultMessage);
    }
}

TEST(SweepRunner, ResultsDoNotDependOnWorkerCount)
{
    auto sweepReports = [](int jobs) {
        SweepRunner sweep(jobs);
        return sweep.map(8, [&](int i) {
            const auto &apps_ = testApps();
            const auto &app = apps_[static_cast<std::size_t>(i) %
                                    apps_.size()];
            auto mode = i % 2 == 0 ? apps::AppMode::Baseline
                                   : apps::AppMode::Stitch;
            return reportOf(sharedRunner().run(
                app, mode, sharedRunner().config()));
        });
    };
    auto serial = sweepReports(1);
    auto threaded = sweepReports(8);
    EXPECT_EQ(serial, threaded);
}

TEST(SweepRunner, LowestIndexExceptionWins)
{
    SweepRunner sweep(4);
    try {
        sweep.map(16, [](int i) {
            if (i == 11)
                throw std::runtime_error("late failure");
            if (i == 3)
                throw std::runtime_error("early failure");
            return i;
        });
        FAIL() << "map() swallowed the worker exceptions";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "early failure");
    }
}

TEST(SweepRunner, EveryTaskThrowingStillRethrowsIndexZero)
{
    // The degenerate concurrent case: all 32 tasks throw at once
    // under 8 workers. The contract is unchanged — the lowest index
    // wins, regardless of which worker failed first in wall time.
    SweepRunner sweep(8);
    try {
        sweep.map(32, [](int i) -> int {
            throw std::runtime_error("task " + std::to_string(i));
        });
        FAIL() << "map() swallowed the worker exceptions";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 0");
    }
}

TEST(SweepRunner, ZeroAndNegativeJobsClampToSerial)
{
    EXPECT_EQ(SweepRunner(0).jobs(), 1);
    EXPECT_EQ(SweepRunner(-3).jobs(), 1);
    auto out = SweepRunner(0).map(3, [](int i) { return i * i; });
    EXPECT_EQ(out, (std::vector<int>{0, 1, 4}));
}

} // namespace
} // namespace stitch::sim

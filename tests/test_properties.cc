/** @file Randomized invariant sweeps across subsystems: the sNoC
 *  router, the inter-core NoC, the stitcher, the patch datapath and
 *  the instruction decoder. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "compiler/stitcher.hh"
#include "core/patch.hh"
#include "core/snoc.hh"
#include "isa/isa.hh"
#include "mem/addrmap.hh"
#include "noc/noc_model.hh"

namespace stitch
{
namespace
{

class PropertySeeds : public ::testing::TestWithParam<int>
{
  protected:
    Rng
    rng() const
    {
        return Rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
    }
};

/** Random fusion requests never corrupt the sNoC configuration. */
TEST_P(PropertySeeds, SnocFuzzStaysValid)
{
    auto r = rng();
    auto arch = core::StitchArch::standard();
    core::SnocConfig snoc;
    int accepted = 0;
    for (int i = 0; i < 40; ++i) {
        auto a = static_cast<TileId>(r.range(0, numTiles - 1));
        auto b = static_cast<TileId>(r.range(0, numTiles - 1));
        if (a == b)
            continue;
        auto routed =
            snoc.addFusion(a, arch.kindOf(a), b, arch.kindOf(b));
        std::string why;
        ASSERT_TRUE(snoc.validate(&why)) << why;
        if (!routed)
            continue;
        ++accepted;
        // Accepted fusions respect the paper's constraints.
        EXPECT_LE(routed->first.hops() + routed->second.hops(),
                  core::rtl::maxFusionHops);
        EXPECT_TRUE(core::fitsClock(core::fusedCriticalPathNs(
            arch.kindOf(a), arch.kindOf(b), routed->first.hops(),
            routed->second.hops())));
        // Register round trip of every switch survives.
        for (TileId t = 0; t < numTiles; ++t)
            EXPECT_EQ(core::SwitchConfig::unpackRegister(
                          snoc.switchAt(t).packRegister()),
                      snoc.switchAt(t));
    }
    EXPECT_GT(accepted, 0);
}

/** Random NoC traffic: arrivals never beat the uncontended latency
 *  and stay FIFO per (src, dst, tag). */
TEST_P(PropertySeeds, NocTrafficRespectsLatencyAndOrder)
{
    auto r = rng();
    noc::NocModel noc;
    struct Sent
    {
        TileId src, dst;
        int tag;
        Word value;
        Cycles inject;
    };
    std::vector<Sent> inflight;
    Cycles now = 0;
    for (int i = 0; i < 300; ++i) {
        now += static_cast<Cycles>(r.range(0, 8));
        Sent s;
        s.src = static_cast<TileId>(r.range(0, numTiles - 1));
        s.dst = static_cast<TileId>(r.range(0, numTiles - 1));
        s.tag = static_cast<int>(r.range(0, 2));
        s.value = static_cast<Word>(r.next());
        s.inject = now;
        noc.send(s.src, s.dst, s.tag, s.value, now);
        inflight.push_back(s);
    }
    std::map<std::tuple<TileId, TileId, int>, Cycles> lastArrival;
    for (const auto &s : inflight) {
        auto msg = noc.tryRecv(s.dst, s.src, s.tag);
        ASSERT_TRUE(msg.has_value());
        // Values delivered FIFO per channel, so this matches.
        EXPECT_EQ(msg->first, s.value);
        EXPECT_GE(msg->second,
                  s.inject + noc.baseLatency(s.src, s.dst));
        auto key = std::make_tuple(s.src, s.dst, s.tag);
        auto it = lastArrival.find(key);
        if (it != lastArrival.end()) {
            EXPECT_GT(msg->second, it->second);
        }
        lastArrival[key] = msg->second;
    }
    EXPECT_FALSE(noc.hasPendingMessages());
}

/** Random kernel profiles always yield structurally valid plans that
 *  never regress the bottleneck. */
TEST_P(PropertySeeds, StitcherPlansAreAlwaysValid)
{
    auto r = rng();
    auto arch = core::StitchArch::standard();
    const core::PatchKind kinds[] = {core::PatchKind::ATMA,
                                     core::PatchKind::ATAS,
                                     core::PatchKind::ATSA};

    std::vector<compiler::KernelProfile> kernels;
    int n = static_cast<int>(r.range(1, 16));
    Cycles worstSw = 0;
    for (int k = 0; k < n; ++k) {
        compiler::KernelProfile p;
        p.name = "k" + std::to_string(k);
        p.swCycles = static_cast<Cycles>(r.range(100, 10000));
        worstSw = std::max(worstSw, p.swCycles);
        int options = static_cast<int>(r.range(0, 6));
        for (int o = 0; o < options; ++o) {
            compiler::AccelTarget target =
                r.range(0, 1) == 0
                    ? compiler::AccelTarget::single(
                          kinds[r.range(0, 2)])
                    : compiler::AccelTarget::fused(
                          kinds[r.range(0, 2)],
                          kinds[r.range(0, 2)]);
            auto cycles = static_cast<Cycles>(
                r.range(50, static_cast<std::int64_t>(p.swCycles)));
            p.options.push_back({target, cycles});
        }
        kernels.push_back(std::move(p));
    }

    for (auto policy : {compiler::StitchPolicy::Greedy,
                        compiler::StitchPolicy::SinglesOnly,
                        compiler::StitchPolicy::Auto}) {
        compiler::StitchOptions options;
        options.policy = policy;
        auto plan =
            compiler::stitchApplication(kernels, arch, options);
        ASSERT_EQ(plan.placements.size(), kernels.size());
        EXPECT_LE(plan.bottleneckCycles(), worstSw);

        std::set<TileId> tiles, patches;
        for (std::size_t k = 0; k < plan.placements.size(); ++k) {
            const auto &p = plan.placements[k];
            ASSERT_GE(p.tile, 0);
            ASSERT_LT(p.tile, numTiles);
            EXPECT_TRUE(tiles.insert(p.tile).second);
            if (!p.accel)
                continue;
            EXPECT_EQ(arch.kindOf(p.tile), p.accel->local);
            EXPECT_TRUE(patches.insert(p.tile).second);
            if (p.accel->type ==
                compiler::AccelTarget::Type::FusedPair) {
                EXPECT_EQ(arch.kindOf(p.remoteTile),
                          p.accel->remote);
                EXPECT_TRUE(patches.insert(p.remoteTile).second);
            }
            // The chosen cycles come from the kernel's option list.
            bool known = false;
            for (const auto &[target, cycles] :
                 kernels[k].options)
                known = known || (target == *p.accel &&
                                  cycles == p.cycles);
            EXPECT_TRUE(known);
        }
        std::string why;
        EXPECT_TRUE(plan.snoc.validate(&why)) << why;
    }
}

/** The patch datapath is total and deterministic over random valid
 *  control words (no crash, no hidden state). */
TEST_P(PropertySeeds, PatchDatapathIsTotalAndDeterministic)
{
    auto r = rng();

    class Spm : public core::SpmPort
    {
      public:
        Word
        load(Addr a) override
        {
            return a * 2654435761u;
        }
        void store(Addr, Word) override {}
    } spm;

    for (int i = 0; i < 300; ++i) {
        core::PatchCtl ctl;
        ctl.a1op = static_cast<core::AluOp>(r.range(0, 7));
        ctl.tMode = static_cast<core::TMode>(r.range(0, 2));
        ctl.u1Lhs = static_cast<core::U1Lhs>(r.range(0, 3));
        ctl.u1Rhs = static_cast<core::U1Rhs>(r.range(0, 3));
        ctl.u2Lhs = static_cast<core::U2Lhs>(r.range(0, 1));
        ctl.u2Rhs = static_cast<core::U2Rhs>(r.range(0, 3));
        ctl.aop2 = static_cast<core::AluOp>(r.range(0, 7));
        ctl.sop = static_cast<core::ShiftOp>(r.range(0, 3));
        ctl.outCfg = static_cast<core::OutCfg>(r.range(0, 3));
        auto kind = static_cast<core::PatchKind>(r.range(0, 2));
        std::array<Word, 4> in;
        for (auto &v : in)
            v = static_cast<Word>(r.next());

        auto first = core::patchExecute(kind, ctl, in, spm);
        auto second = core::patchExecute(kind, ctl, in, spm);
        EXPECT_EQ(first.s1, second.s1);
        EXPECT_EQ(first.s2, second.s2);
    }
}

/** Decoding any word with a valid opcode field yields an instruction
 *  whose re-encoding decodes to itself (idempotent normal form). */
TEST_P(PropertySeeds, DecoderNormalizes)
{
    auto r = rng();
    for (int i = 0; i < 400; ++i) {
        auto op = static_cast<std::uint32_t>(
            r.range(0, static_cast<int>(isa::Opcode::NumOpcodes) - 1));
        std::vector<Word> image = {
            static_cast<Word>((op << 26) | (r.next() & 0x03ffffff)),
            static_cast<Word>(r.next())};
        int used = 0;
        isa::Instr first = isa::decode(image, 0, &used);
        std::vector<Word> reencoded;
        isa::encode(first, reencoded);
        ASSERT_EQ(static_cast<int>(reencoded.size()), used);
        isa::Instr second = isa::decode(reencoded, 0, nullptr);
        EXPECT_EQ(first, second);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeeds,
                         ::testing::Range(0, 10));

} // namespace
} // namespace stitch

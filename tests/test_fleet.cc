/**
 * @file
 * Fleet-layer tests (DESIGN.md §16): the consistent-hash ring
 * (uniformity over 1k keys, bounded remapping on shard add/remove,
 * cross-process determinism pinned by a golden digest), the shared
 * cache tier (cacheget/cacheput verb contract incl. the stamp and
 * key-canonicality guards, read-through and write-behind through two
 * live engines), the stitchrouter core (routing annotation, failover
 * past a killed shard, the typed "unavailable" terminal error,
 * fleet-wide statz aggregation) and the stitchload harness (seeded
 * schedule determinism, closed-loop replay against a live daemon).
 * The telemetry wire forms the router merges (Histogram buckets,
 * MetricSample) get their lossless round-trip pinned here too.
 */

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "fleet/load.hh"
#include "fleet/ring.hh"
#include "fleet/router.hh"
#include "obs/json.hh"
#include "svc/cache.hh"
#include "svc/engine.hh"
#include "svc/job.hh"
#include "svc/server.hh"
#include "telem/histogram.hh"
#include "telem/timeseries.hh"

namespace stitch::fleet
{
namespace
{

/** The 1k synthetic keys every ring test shares. */
std::vector<std::string>
syntheticKeys(int n = 1000)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    for (int i = 0; i < n; ++i)
        keys.push_back("key-" + std::to_string(i));
    return keys;
}

HashRing
threeShardRing()
{
    HashRing ring;
    ring.addShard("alpha");
    ring.addShard("beta");
    ring.addShard("gamma");
    return ring;
}

/** A cheap spec (smallest legal sample window); distinct `salt`
 *  values produce distinct cache identities without changing what
 *  actually runs (the budget is hashed but never reached). */
svc::JobSpec
cheapSpec(std::uint64_t salt = 0)
{
    svc::JobSpec spec;
    spec.app = "APP1-gesture";
    spec.samplesShort = 1;
    spec.samplesLong = 2;
    if (salt)
        spec.maxInstructions = 50'000'000 + salt;
    return spec;
}

// ---------------------------------------------------------------- //
// consistent-hash ring

TEST(HashRing, DistributionStaysNearUniform)
{
    HashRing ring = threeShardRing();
    std::map<std::string, int> share;
    for (const auto &key : syntheticKeys())
        ++share[ring.ownerOf(key)];
    ASSERT_EQ(share.size(), 3u);
    for (const auto &[shard, n] : share) {
        // 1/3 of 1000 ± a generous vnode-smoothing band.
        EXPECT_GT(n, 150) << shard;
        EXPECT_LT(n, 550) << shard;
    }
}

TEST(HashRing, PlacementIsDeterministicAcrossProcesses)
{
    // Golden digest: pinned from an independent standalone binary,
    // so any change to the point-hash scheme, the search, or
    // svc::hashBytes shows up as a cross-process disagreement here.
    HashRing ring = threeShardRing();
    EXPECT_EQ(ring.assignmentDigest(syntheticKeys()),
              3383876001848120797ull);

    // And two independently built rings agree key-for-key.
    HashRing again = threeShardRing();
    for (const auto &key : syntheticKeys(100))
        EXPECT_EQ(ring.ownerOf(key), again.ownerOf(key));
}

TEST(HashRing, AddingAShardMovesFewKeys)
{
    HashRing before = threeShardRing();
    HashRing after = threeShardRing();
    after.addShard("delta");

    const auto keys = syntheticKeys();
    int moved = 0;
    for (const auto &key : keys) {
        const std::string &now = after.ownerOf(key);
        if (now != before.ownerOf(key)) {
            ++moved;
            // Every moved key must have moved *to* the new shard —
            // consistent hashing never shuffles between survivors.
            EXPECT_EQ(now, "delta") << key;
        }
    }
    // Expected churn is ~1/N = 250 of 1000; assert the < 2/N bound.
    EXPECT_GT(moved, 0);
    EXPECT_LT(moved, 500);
}

TEST(HashRing, RemovingAShardMovesOnlyItsKeys)
{
    HashRing four = threeShardRing();
    four.addShard("delta");
    HashRing three = threeShardRing();

    int moved = 0;
    for (const auto &key : syntheticKeys()) {
        const std::string &was = four.ownerOf(key);
        if (was == "delta")
            ++moved;
        else
            EXPECT_EQ(three.ownerOf(key), was) << key;
    }
    EXPECT_GT(moved, 0);
    EXPECT_LT(moved, 500); // < 2/N of 1000, N = 4
}

TEST(HashRing, PreferenceListIsDistinctAndOwnerFirst)
{
    HashRing ring = threeShardRing();
    for (const auto &key : syntheticKeys(50)) {
        auto prefs = ring.preferenceList(key, 3);
        ASSERT_EQ(prefs.size(), 3u);
        EXPECT_EQ(prefs[0], ring.ownerOf(key));
        std::set<std::string> distinct(prefs.begin(), prefs.end());
        EXPECT_EQ(distinct.size(), 3u);
    }
    // n clamps to size().
    EXPECT_EQ(ring.preferenceList("key-0", 99).size(), 3u);
}

TEST(HashRing, ValidatesItsInputs)
{
    HashRing ring;
    EXPECT_THROW(ring.ownerOf("anything"), fault::ConfigError);
    EXPECT_THROW(ring.addShard(""), fault::ConfigError);
    EXPECT_THROW(HashRing(0), fault::ConfigError);

    ring.addShard("alpha");
    ring.addShard("alpha"); // idempotent
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.ownerOf("k"), "alpha");
    ring.removeShard("never-added"); // ignored
    ring.removeShard("alpha");
    EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------- //
// shared cache tier: the wire verbs

obs::Json
cacheGetDoc(const svc::JobSpec &spec)
{
    obs::Json doc = obs::Json::object();
    doc.set("cmd", "cacheget");
    doc.set("key", spec.cacheKey());
    doc.set("spec", spec.toJson());
    return doc;
}

obs::Json
cachePutDoc(const svc::JobSpec &spec, const std::string &stamp)
{
    obs::Json doc = obs::Json::object();
    doc.set("cmd", "cacheput");
    doc.set("key", spec.cacheKey());
    doc.set("stamp", stamp);
    doc.set("spec", spec.toJson());
    obs::Json report = obs::Json::object();
    report.set("marker", "from-peer");
    doc.set("report", report);
    doc.set("derived", obs::Json::object());
    return doc;
}

TEST(CacheVerbs, GetMissesThenHitsAfterPut)
{
    svc::JobEngine engine(svc::EngineOptions{});
    const svc::JobSpec spec = cheapSpec(1);

    obs::Json miss = svc::cacheVerbResponse(engine, cacheGetDoc(spec));
    EXPECT_EQ(miss.get("status").asString(), "miss");
    EXPECT_EQ(miss.get("stamp").asString(), svc::cacheStamp());

    obs::Json put = svc::cacheVerbResponse(
        engine, cachePutDoc(spec, svc::cacheStamp()));
    EXPECT_EQ(put.get("status").asString(), "ok");
    EXPECT_TRUE(put.get("stored").asBool());

    obs::Json hit = svc::cacheVerbResponse(engine, cacheGetDoc(spec));
    ASSERT_EQ(hit.get("status").asString(), "hit");
    // The serving side re-canonicalizes; the echo is what the client
    // compares byte-exact against its own canonical form.
    EXPECT_EQ(hit.get("spec_echo").asString(),
              spec.canonicalJson().dump());
    EXPECT_EQ(hit.get("report").get("marker").asString(),
              "from-peer");
}

TEST(CacheVerbs, PutWithStaleStampIsRejectedTyped)
{
    svc::JobEngine engine(svc::EngineOptions{});
    const svc::JobSpec spec = cheapSpec(2);
    obs::Json resp = svc::cacheVerbResponse(
        engine, cachePutDoc(spec, "stale-stamp"));
    EXPECT_EQ(resp.get("status").asString(), "error");
    EXPECT_EQ(resp.get("error_kind").asString(), "mismatch");
    // Nothing was stored.
    EXPECT_EQ(svc::cacheVerbResponse(engine, cacheGetDoc(spec))
                  .get("status")
                  .asString(),
              "miss");
}

TEST(CacheVerbs, KeyMustMatchTheSpecsCanonicalForm)
{
    svc::JobEngine engine(svc::EngineOptions{});
    obs::Json doc = cacheGetDoc(cheapSpec(3));
    doc.set("key", "not-the-canonical-key");
    obs::Json resp = svc::cacheVerbResponse(engine, doc);
    EXPECT_EQ(resp.get("status").asString(), "error");
    EXPECT_EQ(resp.get("error_kind").asString(), "config");
}

// ---------------------------------------------------------------- //
// shared cache tier: read-through / write-behind between engines

TEST(RemoteCache, ReadThroughAdoptsAPeersEntry)
{
    // Shard 1 simulates; shard 2, peered at it, must hit remotely.
    svc::JobEngine e1{svc::EngineOptions{}};
    const svc::JobSpec spec = cheapSpec(10);
    const int id1 = e1.submit(spec);
    e1.run();
    ASSERT_EQ(e1.result(id1).status,
              svc::JobResult::Status::Completed);

    svc::Server s1(e1, /*port=*/0);
    std::thread serving([&] { s1.serve(); });

    svc::EngineOptions o2;
    o2.remoteCache.peers = {"127.0.0.1:" +
                            std::to_string(s1.port())};
    o2.remoteCache.writeBehind = false;
    svc::JobEngine e2(o2);
    const int id2 = e2.submit(spec);
    e2.run();

    const svc::JobResult &r2 = e2.result(id2);
    ASSERT_EQ(r2.status, svc::JobResult::Status::Completed);
    EXPECT_TRUE(r2.cached);
    ASSERT_NE(e2.remoteCache(), nullptr);
    EXPECT_EQ(e2.remoteCache()->stats().hits, 1u);
    EXPECT_EQ(e2.remoteCache()->stats().errors, 0u);
    // Byte-identical to the peer's own report.
    EXPECT_EQ(r2.report.dump(), e1.result(id1).report.dump());

    s1.stop();
    serving.join();
}

TEST(RemoteCache, WriteBehindReplicatesAFreshSimulation)
{
    svc::JobEngine e1{svc::EngineOptions{}};
    svc::Server s1(e1, /*port=*/0);
    std::thread serving([&] { s1.serve(); });

    svc::EngineOptions o2;
    o2.remoteCache.peers = {"127.0.0.1:" +
                            std::to_string(s1.port())};
    o2.remoteCache.writeBehind = false; // inline, for determinism
    svc::JobEngine e2(o2);
    const svc::JobSpec spec = cheapSpec(11);
    const int id = e2.submit(spec);
    e2.run();
    ASSERT_EQ(e2.result(id).status,
              svc::JobResult::Status::Completed);
    EXPECT_FALSE(e2.result(id).cached);

    // The fresh result must now live in the peer's own cache.
    EXPECT_TRUE(e1.cache().lookup(spec).has_value());
    EXPECT_EQ(e2.remoteCache()->stats().stores, 1u);

    s1.stop();
    serving.join();
}

// ---------------------------------------------------------------- //
// router

/** Three live stitchd shards (engine-mode servers on free ports)
 *  plus a Router fronting them. */
class RouterFixture : public ::testing::Test
{
  protected:
    static constexpr int kShards = 3;

    void
    SetUp() override
    {
        for (int i = 0; i < kShards; ++i) {
            engines_.push_back(std::make_unique<svc::JobEngine>(
                svc::EngineOptions{}));
            servers_.push_back(std::make_unique<svc::Server>(
                *engines_.back(), /*port=*/0));
        }
        RouterOptions options;
        for (const auto &server : servers_)
            options.shards.push_back(
                "127.0.0.1:" + std::to_string(server->port()));
        options.retry.maxAttempts = kShards;
        options.retry.baseDelayMs = 0.5;
        router_ = std::make_unique<Router>(options);
        for (const auto &server : servers_)
            threads_.emplace_back(
                [srv = server.get()] { srv->serve(); });
    }

    void
    TearDown() override
    {
        for (int i = 0; i < kShards; ++i)
            stopShard(i);
    }

    /** Kill shard `i`'s serving loop; its port then refuses. */
    void
    stopShard(int i)
    {
        if (!threads_[i].joinable())
            return;
        servers_[i]->stop();
        threads_[i].join();
    }

    std::string
    shardName(int i) const
    {
        return "127.0.0.1:" +
               std::to_string(servers_[i]->port());
    }

    int
    shardIndexByName(const std::string &name) const
    {
        for (int i = 0; i < kShards; ++i)
            if (shardName(i) == name)
                return i;
        return -1;
    }

    std::vector<std::unique_ptr<svc::JobEngine>> engines_;
    std::vector<std::unique_ptr<svc::Server>> servers_;
    std::vector<std::thread> threads_;
    std::unique_ptr<Router> router_;
};

TEST_F(RouterFixture, RoutesByRingOwnerAndAnnotates)
{
    const svc::JobSpec spec = cheapSpec(20);
    obs::Json resp = router_->handle(spec.toJson());
    ASSERT_EQ(resp.get("status").asString(), "ok");
    EXPECT_EQ(resp.get("shard").asString(),
              router_->ring().ownerOf(spec.cacheKey()));
    EXPECT_EQ(resp.get("router_attempts").asUint(), 1u);

    // A duplicate lands on the same shard — and hits its cache.
    obs::Json again = router_->handle(spec.toJson());
    ASSERT_EQ(again.get("status").asString(), "ok");
    EXPECT_EQ(again.get("shard").asString(),
              resp.get("shard").asString());
    EXPECT_TRUE(again.get("cached").asBool());

    EXPECT_EQ(router_->stats().jobsRouted, 2u);
    EXPECT_EQ(router_->stats().failoverReroutes, 0u);
}

TEST_F(RouterFixture, FailsOverPastADeadShard)
{
    const svc::JobSpec spec = cheapSpec(21);
    obs::Json first = router_->handle(spec.toJson());
    ASSERT_EQ(first.get("status").asString(), "ok");
    const std::string owner = first.get("shard").asString();
    const int ownerIdx = shardIndexByName(owner);
    ASSERT_GE(ownerIdx, 0);

    stopShard(ownerIdx);

    obs::Json rerouted = router_->handle(spec.toJson());
    ASSERT_EQ(rerouted.get("status").asString(), "ok")
        << rerouted.dump();
    EXPECT_NE(rerouted.get("shard").asString(), owner);
    EXPECT_GE(rerouted.get("router_attempts").asUint(), 2u);
    EXPECT_GE(router_->stats().failoverReroutes, 1u);
    EXPECT_GE(router_->stats().shardFailures, 1u);
}

TEST_F(RouterFixture, AggregatesFleetWideStatz)
{
    for (std::uint64_t salt = 30; salt < 33; ++salt)
        ASSERT_EQ(router_->handle(cheapSpec(salt).toJson())
                      .get("status")
                      .asString(),
                  "ok");

    obs::Json statz = router_->handle([] {
        obs::Json doc = obs::Json::object();
        doc.set("cmd", "statz");
        return doc;
    }());
    EXPECT_EQ(statz.get("schema").asString(), routerStatzSchema);
    const obs::Json &fleet = statz.get("fleet");
    EXPECT_EQ(fleet.get("healthy_shards").asUint(),
              static_cast<std::uint64_t>(kShards));
    EXPECT_EQ(fleet.get("jobs_submitted").asUint(), 3u);
    EXPECT_EQ(fleet.get("jobs_completed").asUint(), 3u);
    EXPECT_EQ(fleet.get("jobs_failed").asUint(), 0u);
    EXPECT_EQ(statz.get("router").get("jobs_routed").asUint(), 3u);
    ASSERT_EQ(statz.get("shards").size(),
              static_cast<std::size_t>(kShards));

    // The merged e2e histogram is a real population: its count is
    // the fleet-wide completed total, not an average of averages.
    EXPECT_GE(fleet.get("e2e_p99_ms").asDouble(),
              fleet.get("e2e_p50_ms").asDouble());

    obs::Json health = router_->handle([] {
        obs::Json doc = obs::Json::object();
        doc.set("cmd", "healthz");
        return doc;
    }());
    EXPECT_EQ(health.get("schema").asString(), routerHealthzSchema);
    EXPECT_EQ(health.get("healthy_shards").asUint(),
              static_cast<std::uint64_t>(kShards));
}

TEST(Router, ExhaustionAnswersTypedUnavailable)
{
    // Grab a port that refuses: bind, read it back, close.
    std::uint16_t deadPort = 0;
    {
        svc::JobEngine scratch{svc::EngineOptions{}};
        svc::Server ephemeral(scratch, 0);
        deadPort = ephemeral.port();
    }
    RouterOptions options;
    options.shards = {"127.0.0.1:" + std::to_string(deadPort)};
    options.retry.maxAttempts = 1;
    Router router(options);

    obs::Json resp = router.handle(cheapSpec(40).toJson());
    EXPECT_EQ(resp.get("status").asString(), "error");
    EXPECT_EQ(resp.get("error_kind").asString(), "unavailable");
    EXPECT_EQ(router.stats().unavailable, 1u);
}

TEST(Router, ValidatesItsOptions)
{
    EXPECT_THROW(Router{RouterOptions{}}, fault::ConfigError);

    RouterOptions dup;
    dup.shards = {"127.0.0.1:9001", "127.0.0.1:9001"};
    EXPECT_THROW(Router{dup}, fault::ConfigError);

    RouterOptions bad;
    bad.shards = {"no-port-here"};
    EXPECT_THROW(Router{bad}, fault::ConfigError);
}

// ---------------------------------------------------------------- //
// stitchload: the seeded mix

TEST(LoadSchedule, IsAPureFunctionOfTheMix)
{
    LoadMix mix;
    mix.seed = 42;
    mix.requests = 64;
    auto a = buildSchedule(mix);
    auto b = buildSchedule(mix);
    ASSERT_EQ(a.size(), 64u);
    EXPECT_EQ(scheduleDigest(a), scheduleDigest(b));
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].doc.dump(), b[i].doc.dump()) << i;

    mix.seed = 43;
    EXPECT_NE(scheduleDigest(buildSchedule(mix)),
              scheduleDigest(a));
}

TEST(LoadSchedule, MixesHotDuplicatesAndUniqueTail)
{
    LoadMix mix;
    mix.seed = 7;
    mix.requests = 100;
    mix.hotFraction = 0.6;
    mix.hotSetSize = 4;
    auto schedule = buildSchedule(mix);

    std::map<std::string, int> byKey;
    int hot = 0;
    for (const auto &req : schedule) {
        ++byKey[req.key];
        hot += req.hot;
        EXPECT_GE(req.priority, 0);
        EXPECT_LE(req.priority, 2);
    }
    // The hot set produced real duplicates; the tail is unique.
    EXPECT_GT(hot, 20);
    EXPECT_LT(hot, 95);
    int duplicated = 0;
    for (const auto &[key, n] : byKey)
        duplicated += n > 1;
    EXPECT_GT(duplicated, 0);
    EXPECT_LE(duplicated, mix.hotSetSize);
}

TEST(LoadSchedule, ValidatesTheMix)
{
    LoadMix bad;
    bad.requests = 0;
    EXPECT_THROW(bad.validate(), fault::ConfigError);
    bad = LoadMix{};
    bad.hotFraction = 1.5;
    EXPECT_THROW(bad.validate(), fault::ConfigError);
    bad = LoadMix{};
    bad.clients = 0;
    EXPECT_THROW(bad.validate(), fault::ConfigError);
}

TEST(LoadHarness, ClosedLoopReplayAgainstALiveDaemon)
{
    svc::JobEngine engine(svc::EngineOptions{});
    svc::Server server(engine, /*port=*/0);
    std::thread serving([&] { server.serve(); });

    LoadMix mix;
    mix.seed = 5;
    mix.requests = 12;
    mix.clients = 3;
    mix.hotFraction = 1.0; // every request replays one hot job
    mix.hotSetSize = 1;
    LoadReport report = runLoad(mix, "127.0.0.1", server.port());

    EXPECT_EQ(report.ok, 12u);
    EXPECT_EQ(report.untypedFailures, 0u);
    EXPECT_EQ(report.transportFailures, 0u);
    // The single-threaded serve loop serializes the duplicates, so
    // exactly the first simulates and the rest hit.
    EXPECT_EQ(report.cached, 11u);
    EXPECT_EQ(report.latency.count(), 12u);
    EXPECT_EQ(report.digest,
              scheduleDigest(buildSchedule(mix)));

    obs::Json doc = report.toJson();
    EXPECT_EQ(doc.get("schema").asString(), loadReportSchema);
    EXPECT_EQ(doc.get("ok").asUint(), 12u);
    EXPECT_NEAR(doc.get("fleet_hit_rate").asDouble(), 11.0 / 12.0,
                1e-9);

    server.stop();
    serving.join();
}

// ---------------------------------------------------------------- //
// the telemetry wire forms the router merges

TEST(FleetWire, HistogramBucketsRoundTripLosslessly)
{
    telem::Histogram h;
    for (std::uint64_t v : {1u, 10u, 100u, 1000u, 10000u, 100000u})
        h.record(v);
    telem::Histogram back =
        telem::Histogram::fromBucketsJson(h.toBucketsJson());
    EXPECT_EQ(back.count(), h.count());
    for (double q : {0.5, 0.9, 0.99})
        EXPECT_EQ(back.quantile(q), h.quantile(q));

    // Merging a wire copy doubles every bucket.
    h.merge(back);
    EXPECT_EQ(h.count(), 12u);
}

TEST(FleetWire, MetricSampleRoundTripsAndMerges)
{
    telem::MetricSample a;
    a.counters.emplace_back("jobs_completed", 5u);
    a.gauges.emplace_back("queue_depth", 2.0);
    telem::Histogram h;
    h.record(500);
    h.record(1500);
    a.histograms.emplace_back("e2e", h);

    telem::MetricSample b =
        telem::MetricSample::fromWireJson(a.toWireJson());
    EXPECT_EQ(b.counter("jobs_completed"), 5u);
    EXPECT_EQ(b.gauge("queue_depth"), 2.0);
    ASSERT_NE(b.histogram("e2e"), nullptr);
    EXPECT_EQ(b.histogram("e2e")->count(), 2u);

    // The fleet fold: counters and histogram populations add.
    a.merge(b);
    EXPECT_EQ(a.counter("jobs_completed"), 10u);
    EXPECT_EQ(a.histogram("e2e")->count(), 4u);
    EXPECT_EQ(a.gauge("queue_depth"), 4.0);
}

} // namespace
} // namespace stitch::fleet

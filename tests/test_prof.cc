/** @file Profiling/attribution-layer tests: bucket exactness, the
 *  Fig. 13 energy anchors, analytic bottleneck diagnosis, sampler
 *  timeline conservation, and profiler-off determinism. */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_runner.hh"
#include "compiler/rewriter.hh"
#include "isa/assembler.hh"
#include "obs/json.hh"
#include "obs/sampler.hh"
#include "power/power_model.hh"
#include "prof/profile.hh"
#include "prof/speedscope.hh"
#include "sim/system.hh"

namespace stitch::prof
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

compiler::RewrittenProgram
wrap(isa::Program prog)
{
    compiler::RewrittenProgram binary;
    binary.program = std::move(prog);
    return binary;
}

/** The 2-tile ping-pong of test_system.cc / test_obs.cc. */
sim::RunStats
runPingPong(sim::System &system)
{
    Assembler a("ping");
    a.li(t0, 42);
    a.li(t1, 1);
    a.send(t0, t1, 0);
    a.recv(t2, t1, 0);
    a.li(t3, 0x2000);
    a.sw(t2, t3, 0);
    a.halt();

    Assembler b("pong");
    b.li(t1, 0);
    b.recv(t2, t1, 0);
    b.addi(t2, t2, 1);
    b.send(t2, t1, 0);
    b.halt();

    system.loadProgram(0, wrap(a.finish()));
    system.loadProgram(1, wrap(b.finish()));
    return system.run();
}

/**
 * A 2-stage producer/consumer pipeline with a known imbalance: the
 * producer fires `items` sends back to back while the consumer pays
 * extra ALU work per item, so the consumer analytically sets the
 * makespan and the producer's slack is their cycle difference.
 */
sim::RunStats
runTwoStagePipeline(sim::System &system, int items)
{
    Assembler p("producer");
    p.li(t0, 7);
    p.li(t1, 1); // consumer tile
    for (int i = 0; i < items; ++i)
        p.send(t0, t1, 0);
    p.halt();

    Assembler c("consumer");
    c.li(t1, 0); // producer tile
    for (int i = 0; i < items; ++i) {
        c.recv(t2, t1, 0);
        for (int j = 0; j < 6; ++j)
            c.addi(t3, t2, j); // per-item work: consumer dominates
    }
    c.halt();

    system.loadProgram(0, wrap(p.finish()));
    system.loadProgram(1, wrap(c.finish()));
    return system.run();
}

TEST(Buckets, PartitionTileTimeExactly)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    auto stats = runPingPong(system);

    for (int t = 0; t < numTiles; ++t) {
        const auto &ts = stats.perTile[static_cast<std::size_t>(t)];
        if (!ts.loaded)
            continue;
        auto b = sim::cycleBuckets(ts);
        Cycles sum = 0;
        for (Cycles c : b)
            sum += c;
        EXPECT_EQ(sum, ts.cycles) << "tile " << t;
    }
    // buildProfile() asserts the same invariant internally.
    EXPECT_NO_THROW(buildProfile(stats));
}

TEST(Buckets, NamesAreStableAndComplete)
{
    const auto &names = sim::cycleBucketNames();
    ASSERT_EQ(names.size(),
              static_cast<std::size_t>(sim::numCycleBuckets));
    EXPECT_EQ(names.front(), "issue");
    EXPECT_EQ(names.back(), "recv_blocked");
    for (int b = 0; b < sim::numCycleBuckets; ++b)
        EXPECT_EQ(names[static_cast<std::size_t>(b)],
                  sim::cycleBucketName(static_cast<sim::CycleBucket>(b)));
}

/**
 * The energy constants must reproduce Fig. 13 by construction: a chip
 * whose 16 tiles each issue every cycle dissipates the paper's
 * core-side power (139.5 mW minus the 23% accelerator share), and
 * adding one local CUST plus one sNoC hop per tile-cycle brings it to
 * exactly the full 139.5 mW.
 */
TEST(Energy, StandardModelReproducesFig13Anchors)
{
    auto m = power::EnergyModel::standard();
    const double cycles = 1e6;

    double coresPj =
        numTiles * (m.tileIdlePj + m.issueExtraPj) * cycles;
    EXPECT_NEAR(power::averagePowerMw(coresPj, cycles),
                power::baselinePowerMw(), 1e-6);

    double chipPj =
        coresPj + numTiles * (m.custPj + m.snocHopPj) * cycles;
    EXPECT_NEAR(power::averagePowerMw(chipPj, cycles),
                power::stitchTotalMw, 1e-6);

    // Sanity of the remaining derived constants.
    EXPECT_GT(m.stallExtraPj, 0.0);
    EXPECT_LT(m.stallExtraPj, m.issueExtraPj);
    EXPECT_GT(m.blockedExtraPj, 0.0);
    EXPECT_LT(m.blockedExtraPj, m.stallExtraPj);
    EXPECT_NEAR(m.fusedExtraPj, m.custPj * 0.5, 1e-12);
    EXPECT_GT(m.nocPacketPj, 0.0);
}

TEST(Energy, UnloadedTilesAreClockGated)
{
    sim::TileStats ts; // loaded == false
    auto m = power::EnergyModel::standard();
    EXPECT_EQ(tileEnergyPj(m, ts, 12345), 0.0);
}

/** Per-kernel rollup vs the counter-level total on APP1..APP4. */
TEST(Energy, StageRollupMatchesRunTotalOnAllApps)
{
    apps::AppRunner runner(2, 6);
    auto m = power::EnergyModel::standard();
    for (const auto &app : apps::allApps()) {
        auto r = runner.run(app, apps::AppMode::Stitch);
        auto p = buildProfile(r.stats, r.stageBindings,
                              static_cast<std::uint64_t>(r.samplesLong),
                              m);

        double independent = runEnergyPj(m, r.stats);
        ASSERT_GT(independent, 0.0) << app.name;
        EXPECT_NEAR(p.totalEnergyPj, independent,
                    independent * 1e-9)
            << app.name;

        // Stage energies price whole tiles; summing each bound tile
        // once must reproduce the total within 1% (Fig. 13 check).
        std::map<TileId, double> perTile;
        for (const auto &sp : p.stages)
            perTile[sp.tile] = sp.energyPj;
        double rollup = 0.0;
        for (const auto &[tile, pj] : perTile)
            rollup += pj;
        EXPECT_NEAR(rollup, independent, independent * 0.01)
            << app.name;

        // Average power sits between idle and the full-chip anchor.
        EXPECT_GT(p.avgPowerMw, 0.0) << app.name;
        EXPECT_LT(p.avgPowerMw, power::stitchTotalMw * 1.5)
            << app.name;
    }
}

TEST(Bottleneck, MatchesAnalyticTwoStagePipeline)
{
    const int items = 4;
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    auto stats = runTwoStagePipeline(system, items);
    ASSERT_EQ(stats.termination, fault::Termination::Completed);

    const auto &producer = stats.perTile[0];
    const auto &consumer = stats.perTile[1];
    ASSERT_GT(consumer.cycles, producer.cycles);

    std::vector<std::pair<std::string, TileId>> bindings = {
        {"producer#0", 0}, {"consumer#1", 1}};
    auto p = buildProfile(stats, bindings,
                          static_cast<std::uint64_t>(items));

    ASSERT_EQ(p.stages.size(), 2u);
    ASSERT_GE(p.limitingStage, 0);
    EXPECT_EQ(p.stages[static_cast<std::size_t>(p.limitingStage)].name,
              "consumer#1");
    EXPECT_TRUE(p.stages[1].limiting);
    EXPECT_FALSE(p.stages[0].limiting);
    EXPECT_EQ(p.stages[1].slackCycles, 0u);
    EXPECT_EQ(p.stages[0].slackCycles,
              consumer.cycles - producer.cycles);
    EXPECT_DOUBLE_EQ(
        p.stages[1].throughputItemsPer1kCycles,
        static_cast<double>(items) * 1000.0 /
            static_cast<double>(consumer.cycles));

    // The consumer's wait shows up as RECV-blocked attribution.
    auto rb = static_cast<std::size_t>(sim::CycleBucket::RecvBlocked);
    EXPECT_EQ(p.stages[1].buckets[rb], consumer.recvWaitCycles);
}

TEST(ProfileJsonTest, CarriesTilesStagesAndLimiting)
{
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    auto stats = runTwoStagePipeline(system, 4);

    std::vector<std::pair<std::string, TileId>> bindings = {
        {"producer#0", 0}, {"consumer#1", 1}};
    auto p = buildProfile(stats, bindings, 4);

    obs::Json doc = obs::Json::parse(profileJson(p).dump(2));
    EXPECT_EQ(doc.get("makespan_cycles").asUint(), stats.makespan);
    EXPECT_EQ(doc.get("limiting_stage").asString(), "consumer#1");
    EXPECT_GT(doc.get("total_energy_pj").asDouble(), 0.0);

    const obs::Json &tiles = doc.get("tiles");
    ASSERT_EQ(tiles.size(), 2u);
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        const obs::Json &tj = tiles.at(i);
        const obs::Json &buckets = tj.get("buckets");
        std::uint64_t sum = 0;
        for (const auto &name : sim::cycleBucketNames())
            sum += buckets.get(name).asUint();
        EXPECT_EQ(sum, tj.get("cycles").asUint())
            << "tile " << tj.get("tile").asUint();
        EXPECT_EQ(tj.get("cycles").asUint() +
                      tj.get("idle_cycles").asUint(),
                  stats.makespan);
    }

    const obs::Json &stages = doc.get("stages");
    ASSERT_EQ(stages.size(), 2u);
    EXPECT_EQ(stages.at(0).get("stage").asString(), "producer#0");
    EXPECT_FALSE(stages.at(0).get("limiting").asBool());
    EXPECT_TRUE(stages.at(1).get("limiting").asBool());
}

TEST(Speedscope, DocumentIsStructurallyValid)
{
    ASSERT_FALSE(obs::Sampler::enabled());
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    auto stats = runPingPong(system);
    auto p = buildProfile(stats);

    obs::Json doc = obs::Json::parse(speedscopeDocument(p).dump(2));
    EXPECT_EQ(doc.get("$schema").asString(),
              "https://www.speedscope.app/file-format-schema.json");
    const obs::Json &frames = doc.get("shared").get("frames");
    ASSERT_EQ(frames.size(),
              static_cast<std::size_t>(sim::numCycleBuckets));
    EXPECT_EQ(frames.at(0).get("name").asString(), "issue");

    const obs::Json &profiles = doc.get("profiles");
    ASSERT_EQ(profiles.size(), p.tiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const obs::Json &pj = profiles.at(i);
        EXPECT_EQ(pj.get("type").asString(), "sampled");
        ASSERT_EQ(pj.get("samples").size(),
                  pj.get("weights").size());
        // Aggregate export: the weights are the tile's nonzero
        // buckets, so their sum is exactly the tile's local time.
        std::uint64_t sum = 0;
        for (std::size_t s = 0; s < pj.get("weights").size(); ++s)
            sum += pj.get("weights").at(s).asUint();
        EXPECT_EQ(sum, p.tiles[i].cycles);
        EXPECT_EQ(pj.get("endValue").asUint(), sum);
    }
}

/** With --profile on, window sums must conserve every bucket. */
TEST(SamplerTimeline, WindowSumsEqualAggregateBuckets)
{
    obs::Sampler::instance().start(64);
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;
    sim::System system(params);
    auto stats = runPingPong(system);
    obs::Sampler::instance().stop();

    const auto &sampler = obs::Sampler::instance();
    ASSERT_TRUE(sampler.hasData());
    ASSERT_EQ(sampler.seriesNames(), sim::cycleBucketNames());

    for (const auto &[track, windows] : sampler.tracks()) {
        const auto &ts =
            stats.perTile[static_cast<std::size_t>(track)];
        ASSERT_TRUE(ts.loaded) << "track " << track;
        auto expect = sim::cycleBuckets(ts);
        for (int b = 0; b < sim::numCycleBuckets; ++b) {
            std::uint64_t sum = 0;
            for (const auto &w : windows)
                sum += w.cycles[static_cast<std::size_t>(b)];
            EXPECT_EQ(sum, expect[static_cast<std::size_t>(b)])
                << "tile " << track << " bucket " << b;
        }
    }

    obs::Json timeline =
        obs::Json::parse(samplerTimelineJson().dump(2));
    EXPECT_EQ(timeline.get("interval_cycles").asUint(), 64u);
    EXPECT_EQ(timeline.get("series").size(),
              static_cast<std::size_t>(sim::numCycleBuckets));
    EXPECT_TRUE(timeline.get("tracks").has("tile0"));

    // Leave no data behind for later tests in this binary.
    obs::Sampler::instance().start(1000);
    obs::Sampler::instance().stop();
    EXPECT_FALSE(obs::Sampler::instance().hasData());
}

/** The profiler must observe, never perturb: stats are bit-identical
 *  with the sampler on and off. */
TEST(SamplerTimeline, EnabledRunIsBitIdenticalToDisabledRun)
{
    ASSERT_FALSE(obs::Sampler::enabled());
    sim::SystemParams params;
    params.accel = sim::AccelMode::None;

    sim::System off(params);
    auto offStats = runPingPong(off);

    obs::Sampler::instance().start(128);
    sim::System on(params);
    auto onStats = runPingPong(on);
    obs::Sampler::instance().stop();

    EXPECT_EQ(onStats.makespan, offStats.makespan);
    EXPECT_EQ(onStats.instructions, offStats.instructions);
    EXPECT_EQ(onStats.messages, offStats.messages);
    for (int t = 0; t < numTiles; ++t) {
        auto i = static_cast<std::size_t>(t);
        const auto &a = onStats.perTile[i];
        const auto &b = offStats.perTile[i];
        EXPECT_EQ(a.cycles, b.cycles) << "tile " << t;
        EXPECT_EQ(a.instructions, b.instructions) << "tile " << t;
        EXPECT_EQ(sim::cycleBuckets(a), sim::cycleBuckets(b))
            << "tile " << t;
    }

    obs::Sampler::instance().start(1000);
    obs::Sampler::instance().stop();
}

} // namespace
} // namespace stitch::prof

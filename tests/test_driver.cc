/** @file End-to-end compiler-driver tests over the kernel catalog.
 *
 *  compileKernel() internally validates every variant's outputs
 *  against the software run (fatal on mismatch), so simply compiling
 *  each kernel is itself a strong correctness test; the assertions
 *  below add shape checks on the results.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "kernels/catalog.hh"

namespace stitch::compiler
{
namespace
{

class CompileEveryKernel
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CompileEveryKernel, AllVariantsValidateAndAreSane)
{
    auto input = kernels::kernelByName(GetParam()).build({});
    auto compiled = compileKernel(GetParam(), input);

    EXPECT_GT(compiled.softwareCycles, 0u);
    EXPECT_FALSE(compiled.chainStrings.empty());
    // 12 Stitch targets + LOCUS.
    EXPECT_EQ(compiled.variants.size(), 13u);

    for (const auto &v : compiled.variants) {
        // Validation already ran inside compileKernel; cycles must be
        // positive and no variant may be slower than software (the
        // selector only accepts estimated-profitable rewrites, and
        // measurement confirms).
        EXPECT_GT(v.cycles, 0u);
        EXPECT_LE(v.cycles, compiled.softwareCycles * 11 / 10)
            << v.target.name();
        EXPECT_NEAR(v.speedup,
                    static_cast<double>(compiled.softwareCycles) /
                        static_cast<double>(v.cycles),
                    1e-9);
    }

    ASSERT_NE(compiled.bestSinglePatch(), nullptr);
    ASSERT_NE(compiled.bestStitch(), nullptr);
    ASSERT_NE(compiled.locusVariant(), nullptr);
    // Stitched (single or fused) is at least as good as any single.
    EXPECT_LE(compiled.bestStitch()->cycles,
              compiled.bestSinglePatch()->cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, CompileEveryKernel,
    ::testing::Values("fft", "ifft", "fir", "filter", "update",
                      "conv2d", "conv2d10", "sobel", "pooling",
                      "matmul", "fc", "dtw", "aes", "histogram",
                      "svm", "astar", "crc", "viterbi", "kmeans", "iir"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(Driver, AllStitchTargetsEnumerates12)
{
    auto targets = allStitchTargets();
    EXPECT_EQ(targets.size(), 12u);
    int singles = 0, fused = 0;
    for (const auto &t : targets) {
        singles += t.type == AccelTarget::Type::SinglePatch;
        fused += t.type == AccelTarget::Type::FusedPair;
    }
    EXPECT_EQ(singles, 3);
    EXPECT_EQ(fused, 9);
}

TEST(Driver, FindLocatesExactTarget)
{
    auto input = kernels::kernelByName("fir").build({});
    auto compiled = compileKernel("fir", input);
    auto target = AccelTarget::fused(core::PatchKind::ATMA,
                                     core::PatchKind::ATSA);
    const auto *v = compiled.find(target);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->target, target);
    EXPECT_EQ(compiled.find(AccelTarget::locus())->target.type,
              AccelTarget::Type::Locus);
}

TEST(Driver, PipelineShapeCompilesAndProfilesStandalone)
{
    kernels::PipelineShape shape;
    shape.numIn = 2;
    shape.numOut = 1;
    auto input = kernels::kernelByName("fft").build(shape);
    auto compiled = compileKernel("fft-stage", input);
    EXPECT_GT(compiled.softwareCycles, 0u);
    EXPECT_GT(compiled.bestStitch()->speedup, 1.2);
}

TEST(Driver, MeasuredSpeedupsTrackThePaperShape)
{
    // Spot checks of the Fig. 11 shape: fft roughly doubles when
    // stitched; astar barely moves.
    auto fft = compileKernel(
        "fft", kernels::kernelByName("fft").build({}));
    EXPECT_GT(fft.bestStitch()->speedup, 1.8);
    EXPECT_GT(fft.bestSinglePatch()->speedup, 1.5);

    auto astar = compileKernel(
        "astar", kernels::kernelByName("astar").build({}));
    EXPECT_LT(astar.bestStitch()->speedup, 1.5);
}

} // namespace
} // namespace stitch::compiler

/** @file Power/area model tests against the paper's anchors. */

#include <gtest/gtest.h>

#include "power/power_model.hh"

namespace stitch::power
{
namespace
{

TEST(Power, PaperAnchors)
{
    EXPECT_DOUBLE_EQ(stitchPowerMw(), 139.5);
    EXPECT_DOUBLE_EQ(stitchNoFusionPowerMw(), 108.0);
    EXPECT_NEAR(baselinePowerMw(), 139.5 * 0.77, 1e-9);
}

TEST(Power, PerfPerWattReproducesThePapersMath)
{
    // Paper: 2.3X speedup and 23% accelerator power => 1.77X
    // performance/watt (Fig. 14).
    double ratio = 2.3 / (stitchPowerMw() / baselinePowerMw());
    EXPECT_NEAR(ratio, 1.77, 0.01);
}

TEST(Power, LocusEstimateScalesWithFrequency)
{
    double at200 = locusPowerMw(200.0);
    double at400 = locusPowerMw(400.0);
    EXPECT_GT(at200, baselinePowerMw());
    EXPECT_NEAR(at400, 2.0 * at200, 1e-9);
}

TEST(Area, AcceleratorTotalsMatchTableIII)
{
    auto arch = core::StitchArch::standard();
    double accel = patchesAreaUm2(arch) + snocAreaUm2();
    EXPECT_NEAR(accel, stitchAccelAreaUm2, 600.0);
    EXPECT_NEAR(patchesAreaUm2(arch), stitchNoFusionAreaUm2, 400.0);
    // LOCUS area is 7.64x Stitch's (Table III).
    EXPECT_NEAR(locusAccelAreaUm2 / stitchAccelAreaUm2, 7.64, 0.05);
}

TEST(Area, ChipAreaImpliedByHalfPercentShare)
{
    // 168,568 um^2 at 0.5% => ~33.7 mm^2 chip.
    EXPECT_NEAR(chipAreaMm2(), 33.7, 0.2);
}

TEST(Breakdown, PowerSharesSumToOne)
{
    auto rows = powerBreakdown();
    ASSERT_FALSE(rows.empty());
    double total = 0, share = 0, accel = 0;
    for (const auto &row : rows) {
        total += row.value;
        share += row.share;
        if (row.component == "patches" ||
            row.component == "inter-patch NoC")
            accel += row.value;
    }
    EXPECT_NEAR(total, stitchTotalMw, 1e-6);
    EXPECT_NEAR(share, 1.0, 1e-6);
    EXPECT_NEAR(accel / total, accelPowerShare, 1e-6);
}

TEST(Breakdown, AreaRowsCoverAllPatchKindsAndSwitches)
{
    auto rows = accelAreaBreakdown();
    ASSERT_EQ(rows.size(), 4u);
    double total = 0;
    for (const auto &row : rows)
        total += row.value;
    EXPECT_NEAR(total, stitchAccelAreaUm2, 600.0);
    // Switches dominate the accelerator area (Table IV: 7423 each).
    EXPECT_EQ(rows[3].component, "16x sNoC switch");
    EXPECT_GT(rows[3].share, 0.5);
}

TEST(Platform, ReferenceConstants)
{
    EXPECT_DOUBLE_EQ(sensorTagRef.gestureMs, 577.0);
    EXPECT_DOUBLE_EQ(cortexA7Ref.powerMw, 469.0);
    EXPECT_DOUBLE_EQ(paperStitchRef.gestureMs, 7.62);
    EXPECT_DOUBLE_EQ(gestureDeadlineMs, 7.81);
    // Paper Table I: Stitch meets the deadline, the rest do not.
    EXPECT_LT(paperStitchRef.gestureMs, gestureDeadlineMs);
    EXPECT_GT(cortexA7Ref.gestureMs, gestureDeadlineMs);
    EXPECT_GT(paperNoFusionRef.gestureMs, gestureDeadlineMs);
}

TEST(Platform, CyclesToMs)
{
    // 200 MHz: 1M cycles = 5 ms.
    EXPECT_NEAR(cyclesToMs(1e6), 5.0, 1e-9);
}

TEST(Platform, A7DerivationIsConsistent)
{
    // a7VsBaseline * 1.65 == 2.3 by construction.
    EXPECT_NEAR(a7VsBaselineThroughput * 1.65, 2.3, 1e-9);
}

} // namespace
} // namespace stitch::power

/** @file Operation-chain extraction and LCS mining tests. */

#include <gtest/gtest.h>

#include <set>

#include "compiler/chains.hh"
#include "isa/assembler.hh"

namespace stitch::compiler
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

TEST(Chains, ExtractLinearChain)
{
    Assembler a("c");
    a.add(t1, t0, t0);  // A
    a.mul(t2, t1, t0);  // M
    a.add(t3, t2, t0);  // A
    a.srli(t4, t3, 2);  // S
    a.halt();
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    Dfg dfg = Dfg::build(prog, blocks[0], {});
    auto chains = extractChains(dfg);
    ASSERT_EQ(chains.size(), 1u);
    EXPECT_EQ(chains[0], "AMAS");
}

TEST(Chains, ExtractBranchingPaths)
{
    Assembler a("b");
    a.add(t1, t0, t0); // A, feeds two consumers
    a.mul(t2, t1, t0); // M
    a.srli(t3, t1, 1); // S
    a.halt();
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    Dfg dfg = Dfg::build(prog, blocks[0], {});
    auto chains = extractChains(dfg);
    std::set<std::string> set(chains.begin(), chains.end());
    EXPECT_TRUE(set.count("AM"));
    EXPECT_TRUE(set.count("AS"));
}

TEST(Chains, LoadsAppearAsT)
{
    Assembler a("t");
    a.add(t1, s2, t0); // A
    a.lw(t2, t1, 0);   // T
    a.halt();
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    Dfg dfg = Dfg::build(prog, blocks[0], {s2});
    auto chains = extractChains(dfg);
    ASSERT_FALSE(chains.empty());
    EXPECT_NE(chains[0].find("AT"), std::string::npos);
}

TEST(Mining, FindsTheSharedSubstring)
{
    std::vector<KernelChains> kernels = {
        {"k1", {"ATMA"}},
        {"k2", {"XATB"}},
        {"k3", {"CCAT"}},
        {"k4", {"MMMM"}},
    };
    auto stats = mineChains(kernels);
    ASSERT_FALSE(stats.empty());
    EXPECT_EQ(stats[0].chain, "AT");
    EXPECT_EQ(stats[0].kernelsContaining, 3);
    EXPECT_NEAR(stats[0].occurrenceRate, 0.75, 1e-9);
}

TEST(Mining, RemovalSplitsStrings)
{
    // After removing "AT", "MATS" leaves "M" and "S": the later
    // rounds must not see phantom "MS" chains spanning the cut.
    std::vector<KernelChains> kernels = {
        {"k1", {"MATS"}},
        {"k2", {"MATS"}},
    };
    auto stats = mineChains(kernels, 8, 2);
    ASSERT_FALSE(stats.empty());
    EXPECT_EQ(stats[0].chain, "MATS");
    // Whole string shared first; nothing of length >= 2 remains.
    EXPECT_EQ(stats.size(), 1u);
}

TEST(Mining, RoundsAreOrdered)
{
    std::vector<KernelChains> kernels = {
        {"k1", {"AATT", "MM"}},
        {"k2", {"AATT", "MM"}},
        {"k3", {"AATT"}},
    };
    auto stats = mineChains(kernels);
    ASSERT_GE(stats.size(), 2u);
    EXPECT_EQ(stats[0].round, 1);
    EXPECT_EQ(stats[1].round, 2);
    EXPECT_EQ(stats[0].chain, "AATT");
    EXPECT_EQ(stats[1].chain, "MM");
    EXPECT_GT(stats[0].kernelsContaining,
              stats[1].kernelsContaining);
}

TEST(Mining, EmptyInput)
{
    EXPECT_TRUE(mineChains({}).empty());
    EXPECT_TRUE(mineChains({{"k", {}}}).empty());
}

TEST(Mining, MinLengthRespected)
{
    std::vector<KernelChains> kernels = {
        {"k1", {"AB"}},
        {"k2", {"BA"}},
    };
    // Only single characters are shared; with minLength 2 nothing
    // qualifies.
    EXPECT_TRUE(mineChains(kernels, 8, 2).empty());
}

} // namespace
} // namespace stitch::compiler

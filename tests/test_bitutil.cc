/** @file Unit and property tests for common/bitutil.hh. */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/rng.hh"

namespace stitch
{
namespace
{

TEST(BitUtil, ExtractBasic)
{
    EXPECT_EQ(extractBits(0xdeadbeefu, 0, 8), 0xefu);
    EXPECT_EQ(extractBits(0xdeadbeefu, 8, 8), 0xbeu);
    EXPECT_EQ(extractBits(0xdeadbeefu, 28, 4), 0xdu);
    EXPECT_EQ(extractBits(0xffffffffu, 0, 32), 0xffffffffu);
}

TEST(BitUtil, InsertBasic)
{
    EXPECT_EQ(insertBits(0, 0, 8, 0xab), 0xabu);
    EXPECT_EQ(insertBits(0, 8, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffffffffu, 8, 8, 0), 0xffff00ffu);
}

TEST(BitUtil, InsertMasksOverflowingField)
{
    // Bits beyond the field width must not leak.
    EXPECT_EQ(insertBits(0, 0, 4, 0xff), 0xfu);
}

TEST(BitUtil, SignExtend)
{
    EXPECT_EQ(signExtend(0x8000u, 16), -32768);
    EXPECT_EQ(signExtend(0x7fffu, 16), 32767);
    EXPECT_EQ(signExtend(0xffffu, 16), -1);
    EXPECT_EQ(signExtend(0x1u, 1), -1);
    EXPECT_EQ(signExtend(0x0u, 1), 0);
}

TEST(BitUtil, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_TRUE(fitsSigned(-32768, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
    EXPECT_FALSE(fitsSigned(-32769, 16));
    EXPECT_TRUE(fitsSigned(0, 1));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(BitUtil, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
    EXPECT_TRUE(fitsUnsigned(0, 1));
}

TEST(BitUtil, PackerRoundTripFixedLayout)
{
    BitPacker p;
    p.push(0x5, 3);
    p.push(0x2, 2);
    p.push(0x1ff, 9);
    ASSERT_EQ(p.width(), 14);

    BitUnpacker u(p.value());
    EXPECT_EQ(u.pull(3), 0x5u);
    EXPECT_EQ(u.pull(2), 0x2u);
    EXPECT_EQ(u.pull(9), 0x1ffu);
}

/** Property: pack-then-unpack is identity for random field splits. */
TEST(BitUtil, PackerRoundTripRandomized)
{
    Rng rng(7);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<std::pair<std::uint32_t, int>> fields;
        int total = 0;
        BitPacker p;
        while (total < 50) {
            int width = static_cast<int>(rng.range(1, 12));
            if (total + width > 64)
                break;
            auto value = static_cast<std::uint32_t>(
                rng.next() & ((1ull << width) - 1));
            fields.emplace_back(value, width);
            p.push(value, width);
            total += width;
        }
        BitUnpacker u(p.value());
        for (auto [value, width] : fields)
            EXPECT_EQ(u.pull(width), value);
    }
}

/** Property: insert then extract returns the field. */
TEST(BitUtil, InsertExtractRandomized)
{
    Rng rng(13);
    for (int iter = 0; iter < 500; ++iter) {
        int width = static_cast<int>(rng.range(1, 31));
        int lo = static_cast<int>(rng.range(0, 32 - width));
        auto base = static_cast<std::uint32_t>(rng.next());
        auto field = static_cast<std::uint32_t>(
            rng.next() & ((1ull << width) - 1));
        auto combined = insertBits(base, lo, width, field);
        EXPECT_EQ(extractBits(combined, lo, width), field);
        // Bits outside the field are untouched.
        std::uint32_t mask = ~(((width >= 32 ? 0xffffffffu
                                             : ((1u << width) - 1u)))
                               << lo);
        EXPECT_EQ(combined & mask, base & mask);
    }
}

} // namespace
} // namespace stitch

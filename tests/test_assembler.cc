/** @file Assembler (label resolution, pseudo-ops) tests. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"

namespace stitch::isa
{
namespace
{

using namespace reg;

TEST(Assembler, BackwardBranchOffset)
{
    Assembler a("t");
    auto loop = a.newLabel();
    a.bind(loop);
    a.addi(t0, t0, 1);   // word 0
    a.bne(t0, t1, loop); // word 1 -> offset -1
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.code()[1].imm, -1);
}

TEST(Assembler, ForwardBranchOffset)
{
    Assembler a("t");
    auto skip = a.newLabel();
    a.beq(t0, t1, skip); // word 0
    a.addi(t0, t0, 1);   // word 1
    a.addi(t0, t0, 2);   // word 2
    a.bind(skip);
    a.halt(); // word 3
    Program p = a.finish();
    EXPECT_EQ(p.code()[0].imm, 3);
}

TEST(Assembler, BranchOverCustCountsWords)
{
    Assembler a("t");
    auto skip = a.newLabel();
    a.beq(t0, t1, skip); // word 0
    Instr cust;
    cust.op = Opcode::Cust;
    a.emit(cust); // words 1-2
    a.bind(skip);
    a.halt(); // word 3
    Program p = a.finish();
    EXPECT_EQ(p.code()[0].imm, 3);
}

TEST(Assembler, JalTargetsAreAbsolute)
{
    Assembler a("t");
    auto fn = a.newLabel();
    a.jal(ra, fn); // word 0
    a.halt();      // word 1
    a.bind(fn);
    a.addi(t0, t0, 1); // word 2
    a.jalr(zero, ra, 0);
    Program p = a.finish();
    EXPECT_EQ(p.code()[0].op, Opcode::Jal);
    EXPECT_EQ(p.code()[0].imm, 2);
}

TEST(Assembler, LabelBoundPastEnd)
{
    Assembler a("t");
    auto end = a.newLabel();
    a.beq(t0, t1, end); // word 0
    a.addi(t0, t0, 1);  // word 1
    a.bind(end);
    Program p = a.finish();
    EXPECT_EQ(p.code()[0].imm, 2);
}

TEST(Assembler, UnboundLabelIsFatal)
{
    Assembler a("t");
    auto nowhere = a.newLabel();
    a.jmp(nowhere);
    EXPECT_THROW(a.finish(), FatalError);
}

TEST(Assembler, DoubleBindPanics)
{
    Assembler a("t");
    auto l = a.newLabel();
    a.bind(l);
    EXPECT_DEATH(a.bind(l), "label bound twice");
}

TEST(Assembler, LiSmallImmediateIsOneInstr)
{
    Assembler a("t");
    a.li(t0, 1234);
    a.li(t1, -5);
    Program p = a.finish();
    ASSERT_EQ(p.code().size(), 2u);
    EXPECT_EQ(p.code()[0].op, Opcode::Addi);
    EXPECT_EQ(p.code()[0].imm, 1234);
    EXPECT_EQ(p.code()[1].imm, -5);
}

TEST(Assembler, LiLargeImmediateExpandsToLuiOri)
{
    Assembler a("t");
    a.li(t0, 0x12345678);
    Program p = a.finish();
    ASSERT_EQ(p.code().size(), 2u);
    EXPECT_EQ(p.code()[0].op, Opcode::Lui);
    EXPECT_EQ(p.code()[1].op, Opcode::Ori);
    // Reconstruct: (imm << 11) | low11.
    auto value = static_cast<Word>(p.code()[0].imm) << 11;
    value |= static_cast<Word>(p.code()[1].imm);
    EXPECT_EQ(value, 0x12345678u);
}

TEST(Assembler, LiSpmBaseIsSingleLui)
{
    Assembler a("t");
    a.li(t0, static_cast<std::int32_t>(0x80000000u));
    Program p = a.finish();
    ASSERT_EQ(p.code().size(), 1u);
    EXPECT_EQ(p.code()[0].op, Opcode::Lui);
    EXPECT_EQ(static_cast<Word>(p.code()[0].imm) << 11, 0x80000000u);
}

TEST(Assembler, StoreOperandLayout)
{
    Assembler a("t");
    a.sw(t3, s0, 12); // store value=t3 at s0+12
    Program p = a.finish();
    const Instr &in = p.code()[0];
    EXPECT_EQ(in.op, Opcode::Sw);
    EXPECT_EQ(in.rs1, t3);
    EXPECT_EQ(in.rs0, s0);
    EXPECT_EQ(in.imm, 12);
}

TEST(Assembler, SendRecvOperandLayout)
{
    Assembler a("t");
    a.send(t0, t1, 7);
    a.recv(t2, t3, 9);
    Program p = a.finish();
    EXPECT_EQ(p.code()[0].rs0, t0); // data
    EXPECT_EQ(p.code()[0].rs1, t1); // destination tile
    EXPECT_EQ(p.code()[0].imm, 7);
    EXPECT_EQ(p.code()[1].rd0, t2);
    EXPECT_EQ(p.code()[1].rs0, t3); // source tile
    EXPECT_EQ(p.code()[1].imm, 9);
}

TEST(Assembler, FinishTwicePanics)
{
    Assembler a("t");
    a.halt();
    a.finish();
    EXPECT_DEATH(a.finish(), "finish");
}

} // namespace
} // namespace stitch::isa

/**
 * @file
 * Service-layer tests: the stitch-job schema (strict parsing,
 * canonical form, cache key), the content-addressed ResultCache
 * (LRU, disk persistence, stamp and spec-echo invalidation), the
 * JobEngine (priority order, dedup, typed failures, cancellation,
 * worker-count invariance, admission control) and the stitchd wire
 * protocol (in-process localhost round-trip plus adversarial
 * framing: oversize prefixes, mid-frame disconnects, garbage bytes,
 * stalled clients — every violation must answer typed, never crash
 * or wedge the daemon). Crash-safety of the disk cache (atomic
 * writes, recovery scan, memory-only degradation) lives here too;
 * the chaos-injection machinery itself is tested in test_chaos.cc.
 */

#include <arpa/inet.h>
#include <cstring>
#include <filesystem>
#include <functional>
#include <fstream>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "svc/cache.hh"
#include "svc/engine.hh"
#include "svc/job.hh"
#include "svc/server.hh"

namespace stitch::svc
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "stitch_svc_" + name;
    fs::remove_all(dir);
    return dir;
}

obs::Json
minimalJob(const std::string &app = "APP1-gesture")
{
    obs::Json doc = obs::Json::object();
    doc.set("schema", jobSchema);
    doc.set("version", jobSchemaVersion);
    doc.set("app", app);
    return doc;
}

/** A cheap spec (smallest legal sample window) for engine tests. */
JobSpec
cheapSpec(apps::AppMode mode = apps::AppMode::Baseline)
{
    JobSpec spec;
    spec.app = "APP1-gesture";
    spec.mode = mode;
    spec.samplesShort = 1;
    spec.samplesLong = 2;
    return spec;
}

// ---------------------------------------------------------------- //
// stitch-job schema

TEST(JobSchema, MinimalDocMaterializesDefaults)
{
    JobSpec spec = JobSpec::fromJson(minimalJob());
    EXPECT_EQ(spec.app, "APP1-gesture");
    EXPECT_EQ(spec.mode, apps::AppMode::Stitch);
    EXPECT_EQ(spec.policy, compiler::StitchPolicy::Auto);
    EXPECT_EQ(spec.scheduler, sim::SchedulerKind::Slice);
    EXPECT_EQ(spec.samplesShort, 4);
    EXPECT_EQ(spec.samplesLong, 12);
    EXPECT_EQ(spec.maxInstructions, 0u);
    EXPECT_FALSE(spec.healthFromFaults);
    EXPECT_FALSE(spec.artifacts.profile);
}

TEST(JobSchema, RoundTripsThroughToJson)
{
    obs::Json doc = minimalJob("APP3");
    doc.set("name", "label");
    doc.set("priority", 3);
    doc.set("mode", "stitch_no_fusion");
    doc.set("samples_short", 2);
    doc.set("samples_long", 5);
    obs::Json faults = obs::Json::object();
    faults.set("patch_dead", obs::Json::array());
    faults.set("msg_drop_prob", 0.25);
    doc.set("faults", faults);

    JobSpec spec = JobSpec::fromJson(doc);
    EXPECT_EQ(spec.app, "APP3-svm-enc"); // prefix resolved
    JobSpec again = JobSpec::fromJson(spec.toJson());
    EXPECT_EQ(again.name, "label");
    EXPECT_EQ(again.priority, 3);
    EXPECT_EQ(spec.canonicalJson().dump(),
              again.canonicalJson().dump());
    EXPECT_EQ(spec.cacheKey(), again.cacheKey());
}

TEST(JobSchema, StrictParsingRejectsBadDocuments)
{
    // Unknown key (the typo guard).
    obs::Json doc = minimalJob();
    doc.set("schedular", "slice");
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);

    // Wrong schema stamp / version.
    doc = minimalJob();
    doc.set("schema", "stitch-jobs");
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
    doc = minimalJob();
    doc.set("version", 99);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);

    // Missing / unknown / ambiguous app.
    doc = minimalJob();
    EXPECT_THROW(JobSpec::fromJson(obs::Json::object()),
                 fault::ConfigError);
    EXPECT_THROW(JobSpec::fromJson(minimalJob("nope")),
                 fault::ConfigError);
    EXPECT_THROW(JobSpec::fromJson(minimalJob("APP")),
                 fault::ConfigError); // matches all four

    // Wrong field types and bad values.
    doc = minimalJob();
    doc.set("mode", 3);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
    doc = minimalJob();
    doc.set("mode", "turbo");
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
    doc = minimalJob();
    doc.set("priority", -1.0); // negative numbers parse as Double
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
    doc = minimalJob();
    doc.set("samples_short", 5);
    doc.set("samples_long", 5); // need short < long
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
}

TEST(JobSchema, FaultPlanValidationIsEager)
{
    obs::Json doc = minimalJob();
    obs::Json faults = obs::Json::object();
    obs::Json dead = obs::Json::array();
    dead.push(static_cast<std::uint64_t>(numTiles)); // off-mesh tile
    faults.set("patch_dead", dead);
    doc.set("faults", faults);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);

    doc = minimalJob();
    faults = obs::Json::object();
    obs::Json links = obs::Json::array();
    links.push("t0-t99");
    faults.set("links_down", links);
    doc.set("faults", faults);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);

    doc = minimalJob();
    faults = obs::Json::object();
    faults.set("msg_drop_prob", 1.5); // not a probability
    doc.set("faults", faults);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
}

TEST(JobSchema, CacheKeyIgnoresPresentationFields)
{
    JobSpec a = cheapSpec();
    JobSpec b = a;
    b.name = "a different label";
    b.priority = 42;
    EXPECT_EQ(a.canonicalJson().dump(), b.canonicalJson().dump());
    EXPECT_EQ(a.cacheKey(), b.cacheKey());

    // Every simulation-relevant field must move the key.
    JobSpec c = a;
    c.policy = compiler::StitchPolicy::Greedy;
    EXPECT_NE(a.cacheKey(), c.cacheKey());
    JobSpec d = a;
    d.faults = fault::FaultPlan::patchFailure(3);
    EXPECT_NE(a.cacheKey(), d.cacheKey());
    JobSpec e = a;
    e.maxInstructions = 1000;
    EXPECT_NE(a.cacheKey(), e.cacheKey());
}

TEST(JobSchema, DeadlineRoundTripsButStaysOutOfCacheIdentity)
{
    obs::Json doc = minimalJob();
    doc.set("deadline_ms", 250);
    JobSpec spec = JobSpec::fromJson(doc);
    EXPECT_EQ(spec.deadlineMs, 250u);
    JobSpec again = JobSpec::fromJson(spec.toJson());
    EXPECT_EQ(again.deadlineMs, 250u);

    // A service property like priority: two jobs differing only in
    // deadline describe the same simulation and share a cache entry.
    JobSpec bare = JobSpec::fromJson(minimalJob());
    EXPECT_EQ(bare.canonicalJson().dump(),
              spec.canonicalJson().dump());
    EXPECT_EQ(bare.cacheKey(), spec.cacheKey());

    // ... and stays distinct from the max_instructions work budget,
    // which IS simulation-relevant.
    JobSpec budget = bare;
    budget.maxInstructions = 777;
    EXPECT_NE(bare.cacheKey(), budget.cacheKey());
}

TEST(JobSchema, HashBytesAvalanches)
{
    EXPECT_EQ(hashBytes("stitch"), hashBytes("stitch"));
    EXPECT_NE(hashBytes("stitch"), hashBytes("stitcH"));
    EXPECT_NE(hashBytes(""), hashBytes(std::string(1, '\0')));
}

// ---------------------------------------------------------------- //
// ResultCache

CacheEntry
dummyEntry(const std::string &tag)
{
    CacheEntry entry;
    entry.report = obs::Json::object();
    entry.report.set("tag", tag);
    entry.derived = obs::Json::object();
    entry.derived.set("tag", tag);
    return entry;
}

TEST(ResultCache, MemoryLayerRoundTripsAndTracksLru)
{
    ResultCache cache("", /*memEntries=*/1);
    JobSpec a = cheapSpec();
    JobSpec b = cheapSpec(apps::AppMode::Stitch);

    EXPECT_FALSE(cache.lookup(a).has_value());
    cache.store(a, dummyEntry("a"));
    auto hit = cache.lookup(a);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->report.get("tag").asString(), "a");

    // Capacity one: storing b evicts a.
    cache.store(b, dummyEntry("b"));
    EXPECT_FALSE(cache.lookup(a).has_value());
    EXPECT_TRUE(cache.lookup(b).has_value());

    auto stats = cache.stats();
    EXPECT_EQ(stats.memHits, 2u);
    EXPECT_EQ(stats.stores, 2u);
}

TEST(ResultCache, DiskLayerPersistsAcrossInstances)
{
    const std::string dir = scratchDir("disk");
    JobSpec spec = cheapSpec();
    {
        ResultCache cache(dir);
        cache.store(spec, dummyEntry("persisted"));
    }
    ResultCache fresh(dir);
    auto hit = fresh.lookup(spec);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->report.get("tag").asString(), "persisted");
    EXPECT_EQ(fresh.stats().diskHits, 1u);
    // The disk hit was promoted into memory.
    EXPECT_TRUE(fresh.lookup(spec).has_value());
    EXPECT_EQ(fresh.stats().memHits, 1u);
}

TEST(ResultCache, StaleStampInvalidatesEntry)
{
    const std::string dir = scratchDir("stamp");
    JobSpec spec = cheapSpec();
    ResultCache cache(dir);
    cache.store(spec, dummyEntry("stale"));

    // Doctor the stored stamp: a version bump must retire the entry.
    const std::string path = dir + "/" + spec.cacheKey() + ".json";
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const std::string stamp = cacheStamp();
    auto at = text.find(stamp);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, stamp.size(), "job0-report0-engine0");
    std::ofstream(path) << text;

    ResultCache fresh(dir);
    EXPECT_FALSE(fresh.lookup(spec).has_value());
    EXPECT_EQ(fresh.stats().invalidated, 1u);
    EXPECT_EQ(fresh.stats().diskHits, 0u);
}

TEST(ResultCache, SpecEchoMismatchDegradesToMiss)
{
    const std::string dir = scratchDir("echo");
    JobSpec a = cheapSpec();
    JobSpec b = cheapSpec(apps::AppMode::Stitch);
    ResultCache cache(dir);
    cache.store(a, dummyEntry("a"));

    // Simulate a hash collision: b's key file holds a's entry.
    fs::copy_file(dir + "/" + a.cacheKey() + ".json",
                  dir + "/" + b.cacheKey() + ".json");
    ResultCache fresh(dir);
    EXPECT_FALSE(fresh.lookup(b).has_value());
    EXPECT_EQ(fresh.stats().invalidated, 1u);
    // The honest entry still hits.
    EXPECT_TRUE(fresh.lookup(a).has_value());
}

TEST(ResultCache, CorruptFileIsAMissNotAnError)
{
    const std::string dir = scratchDir("corrupt");
    JobSpec spec = cheapSpec();
    ResultCache cache(dir);
    cache.store(spec, dummyEntry("x"));
    std::ofstream(dir + "/" + spec.cacheKey() + ".json")
        << "{ not json";
    // The startup recovery scan quarantines the unparseable entry,
    // so the lookup is a plain miss — not an error, not a late
    // invalidation.
    ResultCache fresh(dir);
    EXPECT_EQ(fresh.stats().quarantined, 1u);
    EXPECT_FALSE(fresh.lookup(spec).has_value());
    EXPECT_EQ(fresh.stats().invalidated, 0u);
}

// ---------------------------------------------------------------- //
// ResultCache crash safety (atomic writes, recovery, degradation)

TEST(ResultCache, StoresAreAtomicAndLeaveNoTempFiles)
{
    const std::string dir = scratchDir("atomic");
    ResultCache cache(dir);
    cache.store(cheapSpec(), dummyEntry("a"));
    cache.store(cheapSpec(apps::AppMode::Stitch), dummyEntry("b"));

    int entries = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        EXPECT_EQ(e.path().extension(), ".json") << e.path();
        ++entries;
    }
    EXPECT_EQ(entries, 2);
}

TEST(ResultCache, RecoveryScanSweepsOrphansAndQuarantinesTornEntries)
{
    const std::string dir = scratchDir("recover");
    JobSpec good = cheapSpec();
    {
        ResultCache cache(dir);
        cache.store(good, dummyEntry("good"));
    }
    // A crashed writer's leftovers: an orphaned temp file and an
    // entry truncated mid-write at its *final* path.
    std::ofstream(dir + "/deadbeef.0.tmp") << "{ \"partial\": ";
    std::ofstream(dir + "/0123456789abcdef.json")
        << "{ \"schema\": \"stitch-cache-en";

    ResultCache fresh(dir);
    const auto stats = fresh.stats();
    EXPECT_EQ(stats.tmpSwept, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_FALSE(fs::exists(dir + "/deadbeef.0.tmp"));
    EXPECT_FALSE(fs::exists(dir + "/0123456789abcdef.json"));
    EXPECT_TRUE(
        fs::exists(dir + "/0123456789abcdef.json.quarantine"));
    // The healthy entry survived the scan and still serves.
    EXPECT_TRUE(fresh.lookup(good).has_value());
}

TEST(ResultCache, WriteFailuresDegradeToMemoryOnlyMode)
{
    const std::string dir = scratchDir("degrade");
    JobSpec early = cheapSpec();
    {
        ResultCache seeded(dir);
        seeded.store(early, dummyEntry("early"));
    }

    const ServiceFaultPlan plan =
        ServiceFaultPlan::cacheWriteFailures(1.0, 42);
    const ServiceFaultInjector injector(plan);
    ResultCache cache(dir);
    cache.setFaultInjector(&injector);

    JobSpec specs[3] = {cheapSpec(apps::AppMode::Stitch),
                        cheapSpec(apps::AppMode::Locus), cheapSpec()};
    specs[2].samplesLong = 3;
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(cache.memoryOnly());
        cache.store(specs[i], dummyEntry("x"));
    }
    // writeFailureLimit consecutive losses trip memory-only mode;
    // nothing threw, nothing was written to disk.
    EXPECT_TRUE(cache.memoryOnly());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.writeFailures, ResultCache::writeFailureLimit);
    EXPECT_TRUE(stats.degraded);
    for (const auto &spec : specs)
        EXPECT_FALSE(
            fs::exists(dir + "/" + spec.cacheKey() + ".json"));

    // Degraded means disk *writes* stop; the memory layer still
    // round-trips and entries already on disk still read.
    EXPECT_TRUE(cache.lookup(specs[0]).has_value());
    EXPECT_TRUE(cache.lookup(early).has_value());
}

TEST(ResultCache, TornWriteInjectionLeavesQuarantinableEntry)
{
    const std::string dir = scratchDir("torn");
    const ServiceFaultPlan plan =
        ServiceFaultPlan::tornCacheEntries(1.0, 7);
    const ServiceFaultInjector injector(plan);
    JobSpec spec = cheapSpec();
    {
        ResultCache cache(dir);
        cache.setFaultInjector(&injector);
        cache.store(spec, dummyEntry("torn"));
        EXPECT_EQ(cache.stats().tornWrites, 1u);
    }
    // The torn file sits at the final path — exactly what a crash
    // between write and rename leaves. A restart must quarantine it.
    ASSERT_TRUE(fs::exists(dir + "/" + spec.cacheKey() + ".json"));
    ResultCache fresh(dir);
    EXPECT_EQ(fresh.stats().quarantined, 1u);
    EXPECT_FALSE(fresh.lookup(spec).has_value());
}

// ---------------------------------------------------------------- //
// JobEngine

TEST(JobEngine, PriorityOrdersClaimsAndDuplicatesCoalesce)
{
    // One worker, two submissions of the same spec at different
    // priorities: the high-priority job must be claimed first (and
    // simulate); the earlier, low-priority one then hits the cache.
    JobEngine engine;
    const int low = engine.submit(cheapSpec());
    JobSpec urgent = cheapSpec();
    urgent.priority = 10;
    const int high = engine.submit(urgent);
    engine.run();

    EXPECT_EQ(engine.result(high).status,
              JobResult::Status::Completed);
    EXPECT_FALSE(engine.result(high).cached);
    EXPECT_EQ(engine.result(low).status,
              JobResult::Status::Completed);
    EXPECT_TRUE(engine.result(low).cached);
    EXPECT_EQ(engine.result(low).report.dump(),
              engine.result(high).report.dump());
}

TEST(JobEngine, TypedFailureDoesNotSinkTheBatch)
{
    // The naive half of a dead-link fault scenario: the healthy plan
    // routes over the dead link, so the run is rejected with a
    // ConfigError *inside the worker* — after submit-time validation
    // passed. The batch must finish; the failure must be typed.
    JobEngine engine;
    JobSpec good = cheapSpec();
    JobSpec naive;
    naive.app = "APP3-svm-enc";
    naive.mode = apps::AppMode::Stitch;
    naive.samplesShort = 1;
    naive.samplesLong = 2;
    for (const auto &link : fault::allSnocLinks())
        if (link.name() == "t9-t10")
            naive.faults = fault::FaultPlan::linkFailure(link);
    naive.healthFromFaults = false; // keep the healthy plan
    const int ok = engine.submit(good);
    const int bad = engine.submit(naive);
    engine.run();

    EXPECT_EQ(engine.result(ok).status, JobResult::Status::Completed);
    ASSERT_EQ(engine.result(bad).status, JobResult::Status::Failed);
    EXPECT_EQ(engine.result(bad).errorKind, "config");
    EXPECT_FALSE(engine.result(bad).error.empty());

    // Eager validation: an invalid spec never reaches the queue.
    JobSpec invalid = cheapSpec();
    invalid.app = "no-such-app";
    EXPECT_THROW(engine.submit(invalid), fault::ConfigError);
}

TEST(JobEngine, CancelMidQueueSkipsTheJob)
{
    JobEngine engine;
    const int first = engine.submit(cheapSpec());
    JobSpec other = cheapSpec(apps::AppMode::Locus);
    const int middle = engine.submit(other);
    const int last = engine.submit(cheapSpec()); // dup of first
    EXPECT_TRUE(engine.cancel(middle));
    EXPECT_FALSE(engine.cancel(middle)); // already cancelled
    engine.run();

    EXPECT_EQ(engine.result(first).status,
              JobResult::Status::Completed);
    EXPECT_EQ(engine.result(middle).status,
              JobResult::Status::Cancelled);
    EXPECT_EQ(engine.result(last).status,
              JobResult::Status::Completed);
    EXPECT_FALSE(engine.cancel(first)); // finished jobs stay put

    obs::Json report = engine.serviceReportJson();
    const obs::Json &jobs =
        report.get("counters").get("svc").get("jobs");
    EXPECT_EQ(jobs.get("cancelled").asUint(), 1u);
    EXPECT_EQ(jobs.get("completed").asUint(), 2u);
    EXPECT_EQ(jobs.get("simulated").asUint(), 1u);
    EXPECT_EQ(jobs.get("cache_hits").asUint(), 1u);
}

TEST(JobEngine, ResultsDoNotDependOnWorkerCount)
{
    auto runBatch = [](int workers) {
        EngineOptions options;
        options.jobs = workers;
        JobEngine engine(options);
        std::vector<int> ids;
        ids.push_back(engine.submit(cheapSpec()));
        ids.push_back(
            engine.submit(cheapSpec(apps::AppMode::Stitch)));
        ids.push_back(engine.submit(cheapSpec())); // duplicate
        JobSpec app2 = cheapSpec();
        app2.app = "APP2-cnn";
        ids.push_back(engine.submit(app2));
        engine.run();
        std::vector<std::pair<std::string, bool>> out;
        for (int id : ids) {
            const JobResult &r = engine.result(id);
            out.emplace_back(r.report.dump() + r.derived.dump(),
                             r.cached);
        }
        return out;
    };
    auto serial = runBatch(1);
    auto threaded = runBatch(4);
    EXPECT_EQ(serial, threaded);
}

TEST(JobEngine, InstructionBudgetMapsToInstructionLimit)
{
    JobEngine engine;
    JobSpec spec = cheapSpec();
    spec.maxInstructions = 500; // far too few to finish a sample
    const int id = engine.submit(spec);
    engine.run();
    const JobResult &result = engine.result(id);
    ASSERT_EQ(result.status, JobResult::Status::Completed);
    EXPECT_EQ(result.derived.get("termination").asString(),
              "instruction-limit");
}

TEST(JobEngine, WarmDiskCacheSimulatesNothing)
{
    const std::string dir = scratchDir("engine_disk");
    EngineOptions options;
    options.cacheDir = dir;
    auto counters = [](JobEngine &engine) {
        obs::Json report = engine.serviceReportJson();
        const obs::Json &jobs =
            report.get("counters").get("svc").get("jobs");
        return std::make_pair(jobs.get("simulated").asUint(),
                              jobs.get("cache_hits").asUint());
    };
    std::string coldReport;
    {
        JobEngine engine(options);
        const int id = engine.submit(cheapSpec());
        engine.run();
        coldReport = engine.result(id).report.dump();
        EXPECT_EQ(counters(engine),
                  std::make_pair(std::uint64_t{1}, std::uint64_t{0}));
    }
    {
        JobEngine engine(options); // fresh process, warm disk
        const int id = engine.submit(cheapSpec());
        engine.run();
        EXPECT_TRUE(engine.result(id).cached);
        EXPECT_EQ(engine.result(id).report.dump(), coldReport);
        EXPECT_EQ(counters(engine),
                  std::make_pair(std::uint64_t{0}, std::uint64_t{1}));
    }
}

// ---------------------------------------------------------------- //
// Admission control

TEST(JobEngine, FullQueueRejectsEqualPriorityWithTypedError)
{
    EngineOptions options;
    options.maxQueueDepth = 2;
    JobEngine engine(options);
    engine.submit(cheapSpec());
    engine.submit(cheapSpec(apps::AppMode::Stitch));
    // Same band as the lowest pending job: no one to shed, typed
    // rejection — never a silent drop.
    EXPECT_THROW(engine.submit(cheapSpec(apps::AppMode::Locus)),
                 OverloadedError);

    engine.run();
    obs::Json report = engine.serviceReportJson();
    const obs::Json &res =
        report.get("counters").get("svc").get("resilience");
    EXPECT_EQ(res.get("rejected").asUint(), 1u);
    EXPECT_EQ(res.get("shed").asUint(), 0u);
}

TEST(JobEngine, HigherPriorityShedsOldestLowestBandJob)
{
    EngineOptions options;
    options.maxQueueDepth = 2;
    JobEngine engine(options);
    const int victim = engine.submit(cheapSpec());
    const int survivor =
        engine.submit(cheapSpec(apps::AppMode::Stitch));
    JobSpec urgent = cheapSpec(apps::AppMode::Locus);
    urgent.priority = 5;
    const int vip = engine.submit(urgent); // sheds `victim`

    const JobResult &shed = engine.result(victim);
    EXPECT_EQ(shed.status, JobResult::Status::Shed);
    EXPECT_EQ(shed.errorKind, "overloaded");
    EXPECT_FALSE(shed.error.empty());

    engine.run();
    EXPECT_EQ(engine.result(survivor).status,
              JobResult::Status::Completed);
    EXPECT_EQ(engine.result(vip).status,
              JobResult::Status::Completed);
    // Shed stays shed — a later run() must not resurrect it.
    EXPECT_EQ(engine.result(victim).status,
              JobResult::Status::Shed);

    obs::Json report = engine.serviceReportJson();
    const obs::Json &res =
        report.get("counters").get("svc").get("resilience");
    EXPECT_EQ(res.get("shed").asUint(), 1u);
    const obs::Json &jobs =
        report.get("counters").get("svc").get("jobs");
    EXPECT_EQ(jobs.get("shed").asUint(), 1u);
}

TEST(JobEngine, UnboundedQueueNeverRejects)
{
    JobEngine engine; // maxQueueDepth = 0: the seed behaviour
    for (int i = 0; i < 16; ++i) {
        JobSpec spec = cheapSpec();
        spec.samplesLong = 2 + i % 3;
        EXPECT_NO_THROW(engine.submit(spec));
    }
    engine.run();
}

// ---------------------------------------------------------------- //
// stitchd wire protocol

TEST(Server, LocalhostRoundTrip)
{
    EngineOptions options;
    JobEngine engine(options);
    Server server(engine, /*port=*/0);
    ASSERT_GT(server.port(), 0);
    std::thread loop([&] { server.serve(/*maxRequests=*/3); });

    obs::Json job = minimalJob();
    job.set("mode", "baseline");
    job.set("samples_short", 1);
    job.set("samples_long", 2);

    obs::Json first = requestReport("127.0.0.1", server.port(), job);
    EXPECT_EQ(first.get("status").asString(), "ok");
    EXPECT_FALSE(first.get("cached").asBool());
    EXPECT_EQ(first.get("report").get("schema").asString(),
              "stitch-run-report");

    // The same job again: served from the engine's cache, same bytes.
    obs::Json second = requestReport("127.0.0.1", server.port(), job);
    EXPECT_TRUE(second.get("cached").asBool());
    EXPECT_EQ(first.get("report").dump(),
              second.get("report").dump());

    // A malformed job document answers with a typed error, and the
    // daemon keeps serving.
    obs::Json bad = minimalJob("no-such-app");
    obs::Json error = requestReport("127.0.0.1", server.port(), bad);
    EXPECT_EQ(error.get("status").asString(), "error");
    EXPECT_EQ(error.get("error_kind").asString(), "config");

    loop.join();
}

// ---------------------------------------------------------------- //
// stitchd frame hardening (adversarial clients)

/** Raw TCP client for speaking *broken* protocol at the server. */
int
rawConnect(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
rawWrite(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Read one length-prefixed response frame and parse it. */
obs::Json
rawReadResponse(int fd)
{
    auto readFully = [&](void *data, std::size_t len) {
        char *p = static_cast<char *>(data);
        while (len > 0) {
            ssize_t n = ::read(fd, p, len);
            if (n <= 0)
                return false;
            p += n;
            len -= static_cast<std::size_t>(n);
        }
        return true;
    };
    std::uint32_t len = 0;
    if (!readFully(&len, sizeof len))
        return obs::Json();
    len = ntohl(len);
    std::string payload(len, '\0');
    if (len > 0 && !readFully(payload.data(), len))
        return obs::Json();
    return obs::Json::parse(payload);
}

/** Run `client` against a fresh single-request server and return the
 *  typed response it provoked. */
obs::Json
provokeResponse(ServerOptions options,
                const std::function<void(int fd)> &client)
{
    EngineOptions engineOptions;
    JobEngine engine(engineOptions);
    Server server(engine, /*port=*/0, options);
    std::thread loop([&] { server.serve(/*maxRequests=*/1); });
    int fd = rawConnect(server.port());
    EXPECT_GE(fd, 0);
    client(fd);
    obs::Json response = rawReadResponse(fd);
    ::close(fd);
    loop.join();
    return response;
}

TEST(ServerHardening, OversizeLengthPrefixAnswersProtocolError)
{
    ServerOptions options;
    options.maxFrameBytes = 1024;
    obs::Json response = provokeResponse(options, [](int fd) {
        std::uint32_t evil = htonl(1u << 30); // promises a gigabyte
        rawWrite(fd, &evil, sizeof evil);
    });
    ASSERT_TRUE(response.isObject());
    EXPECT_EQ(response.get("status").asString(), "error");
    EXPECT_EQ(response.get("error_kind").asString(), "protocol");
    EXPECT_NE(response.get("error").asString().find("1024"),
              std::string::npos);
}

TEST(ServerHardening, MidFrameDisconnectAnswersProtocolError)
{
    // Promise 100 bytes, deliver 10, half-close. SHUT_WR lets this
    // side still read the server's verdict.
    obs::Json response = provokeResponse({}, [](int fd) {
        std::uint32_t len = htonl(100);
        rawWrite(fd, &len, sizeof len);
        rawWrite(fd, "0123456789", 10);
        ::shutdown(fd, SHUT_WR);
    });
    ASSERT_TRUE(response.isObject());
    EXPECT_EQ(response.get("status").asString(), "error");
    EXPECT_EQ(response.get("error_kind").asString(), "protocol");
}

TEST(ServerHardening, TruncatedPrefixAnswersProtocolError)
{
    obs::Json response = provokeResponse({}, [](int fd) {
        rawWrite(fd, "\x00\x00", 2); // half a length prefix
        ::shutdown(fd, SHUT_WR);
    });
    ASSERT_TRUE(response.isObject());
    EXPECT_EQ(response.get("status").asString(), "error");
    EXPECT_EQ(response.get("error_kind").asString(), "protocol");
}

TEST(ServerHardening, GarbageBytesInValidFrameAnswerConfigError)
{
    obs::Json response = provokeResponse({}, [](int fd) {
        const std::string garbage = "\x7f\x01\x02 not json at all";
        std::uint32_t len =
            htonl(static_cast<std::uint32_t>(garbage.size()));
        rawWrite(fd, &len, sizeof len);
        rawWrite(fd, garbage.data(), garbage.size());
    });
    ASSERT_TRUE(response.isObject());
    EXPECT_EQ(response.get("status").asString(), "error");
    EXPECT_EQ(response.get("error_kind").asString(), "config");
}

TEST(ServerHardening, StalledClientTimesOutWithProtocolError)
{
    ServerOptions options;
    options.readTimeoutMs = 50;
    obs::Json response = provokeResponse(options, [](int) {
        // Connect and say nothing: the serve loop must unwedge
        // itself after readTimeoutMs and answer typed.
    });
    ASSERT_TRUE(response.isObject());
    EXPECT_EQ(response.get("status").asString(), "error");
    EXPECT_EQ(response.get("error_kind").asString(), "protocol");
    EXPECT_NE(response.get("error").asString().find("timed out"),
              std::string::npos);
}

TEST(ServerHardening, ServerKeepsServingAfterAdversarialConnection)
{
    EngineOptions engineOptions;
    JobEngine engine(engineOptions);
    Server server(engine, /*port=*/0);
    std::thread loop([&] { server.serve(/*maxRequests=*/2); });

    // Round 1: abusive client (mid-frame hangup, full close).
    int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::uint32_t len = htonl(64);
    rawWrite(fd, &len, sizeof len);
    rawWrite(fd, "abc", 3);
    ::close(fd);

    // Round 2: a well-behaved job sails through.
    obs::Json job = minimalJob();
    job.set("mode", "baseline");
    job.set("samples_short", 1);
    job.set("samples_long", 2);
    obs::Json ok = requestReport("127.0.0.1", server.port(), job);
    EXPECT_EQ(ok.get("status").asString(), "ok");
    loop.join();
}

// ---------------------------------------------------------------- //
// artifact writers (obs::openArtifactFile hardening)

TEST(ArtifactWriter, CreatesMissingParentDirectories)
{
    const std::string dir = scratchDir("artifacts");
    const std::string path = dir + "/nested/deeper/report.json";
    obs::Json doc = obs::Json::object();
    doc.set("ok", true);
    obs::writeJsonFile(path, doc);
    ASSERT_TRUE(fs::exists(path));
    EXPECT_TRUE(obs::Json::parse([&] {
                    std::ifstream in(path);
                    return std::string(
                        (std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
                }()).get("ok").asBool());
}

TEST(ArtifactWriter, UnwritablePathThrowsTypedError)
{
    // A path that routes *through a regular file* cannot be created.
    const std::string dir = scratchDir("unwritable");
    fs::create_directories(dir);
    std::ofstream(dir + "/file") << "x";
    obs::Json doc = obs::Json::object();
    EXPECT_THROW(
        obs::writeJsonFile(dir + "/file/sub/report.json", doc),
        fault::ConfigError);
}

} // namespace
} // namespace stitch::svc

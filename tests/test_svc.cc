/**
 * @file
 * Service-layer tests: the stitch-job schema (strict parsing,
 * canonical form, cache key), the content-addressed ResultCache
 * (LRU, disk persistence, stamp and spec-echo invalidation), the
 * JobEngine (priority order, dedup, typed failures, cancellation,
 * worker-count invariance) and the stitchd wire protocol
 * (in-process localhost round-trip).
 */

#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "svc/cache.hh"
#include "svc/engine.hh"
#include "svc/job.hh"
#include "svc/server.hh"

namespace stitch::svc
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "stitch_svc_" + name;
    fs::remove_all(dir);
    return dir;
}

obs::Json
minimalJob(const std::string &app = "APP1-gesture")
{
    obs::Json doc = obs::Json::object();
    doc.set("schema", jobSchema);
    doc.set("version", jobSchemaVersion);
    doc.set("app", app);
    return doc;
}

/** A cheap spec (smallest legal sample window) for engine tests. */
JobSpec
cheapSpec(apps::AppMode mode = apps::AppMode::Baseline)
{
    JobSpec spec;
    spec.app = "APP1-gesture";
    spec.mode = mode;
    spec.samplesShort = 1;
    spec.samplesLong = 2;
    return spec;
}

// ---------------------------------------------------------------- //
// stitch-job schema

TEST(JobSchema, MinimalDocMaterializesDefaults)
{
    JobSpec spec = JobSpec::fromJson(minimalJob());
    EXPECT_EQ(spec.app, "APP1-gesture");
    EXPECT_EQ(spec.mode, apps::AppMode::Stitch);
    EXPECT_EQ(spec.policy, compiler::StitchPolicy::Auto);
    EXPECT_EQ(spec.scheduler, sim::SchedulerKind::Slice);
    EXPECT_EQ(spec.samplesShort, 4);
    EXPECT_EQ(spec.samplesLong, 12);
    EXPECT_EQ(spec.maxInstructions, 0u);
    EXPECT_FALSE(spec.healthFromFaults);
    EXPECT_FALSE(spec.artifacts.profile);
}

TEST(JobSchema, RoundTripsThroughToJson)
{
    obs::Json doc = minimalJob("APP3");
    doc.set("name", "label");
    doc.set("priority", 3);
    doc.set("mode", "stitch_no_fusion");
    doc.set("samples_short", 2);
    doc.set("samples_long", 5);
    obs::Json faults = obs::Json::object();
    faults.set("patch_dead", obs::Json::array());
    faults.set("msg_drop_prob", 0.25);
    doc.set("faults", faults);

    JobSpec spec = JobSpec::fromJson(doc);
    EXPECT_EQ(spec.app, "APP3-svm-enc"); // prefix resolved
    JobSpec again = JobSpec::fromJson(spec.toJson());
    EXPECT_EQ(again.name, "label");
    EXPECT_EQ(again.priority, 3);
    EXPECT_EQ(spec.canonicalJson().dump(),
              again.canonicalJson().dump());
    EXPECT_EQ(spec.cacheKey(), again.cacheKey());
}

TEST(JobSchema, StrictParsingRejectsBadDocuments)
{
    // Unknown key (the typo guard).
    obs::Json doc = minimalJob();
    doc.set("schedular", "slice");
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);

    // Wrong schema stamp / version.
    doc = minimalJob();
    doc.set("schema", "stitch-jobs");
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
    doc = minimalJob();
    doc.set("version", 99);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);

    // Missing / unknown / ambiguous app.
    doc = minimalJob();
    EXPECT_THROW(JobSpec::fromJson(obs::Json::object()),
                 fault::ConfigError);
    EXPECT_THROW(JobSpec::fromJson(minimalJob("nope")),
                 fault::ConfigError);
    EXPECT_THROW(JobSpec::fromJson(minimalJob("APP")),
                 fault::ConfigError); // matches all four

    // Wrong field types and bad values.
    doc = minimalJob();
    doc.set("mode", 3);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
    doc = minimalJob();
    doc.set("mode", "turbo");
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
    doc = minimalJob();
    doc.set("priority", -1.0); // negative numbers parse as Double
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
    doc = minimalJob();
    doc.set("samples_short", 5);
    doc.set("samples_long", 5); // need short < long
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
}

TEST(JobSchema, FaultPlanValidationIsEager)
{
    obs::Json doc = minimalJob();
    obs::Json faults = obs::Json::object();
    obs::Json dead = obs::Json::array();
    dead.push(static_cast<std::uint64_t>(numTiles)); // off-mesh tile
    faults.set("patch_dead", dead);
    doc.set("faults", faults);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);

    doc = minimalJob();
    faults = obs::Json::object();
    obs::Json links = obs::Json::array();
    links.push("t0-t99");
    faults.set("links_down", links);
    doc.set("faults", faults);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);

    doc = minimalJob();
    faults = obs::Json::object();
    faults.set("msg_drop_prob", 1.5); // not a probability
    doc.set("faults", faults);
    EXPECT_THROW(JobSpec::fromJson(doc), fault::ConfigError);
}

TEST(JobSchema, CacheKeyIgnoresPresentationFields)
{
    JobSpec a = cheapSpec();
    JobSpec b = a;
    b.name = "a different label";
    b.priority = 42;
    EXPECT_EQ(a.canonicalJson().dump(), b.canonicalJson().dump());
    EXPECT_EQ(a.cacheKey(), b.cacheKey());

    // Every simulation-relevant field must move the key.
    JobSpec c = a;
    c.policy = compiler::StitchPolicy::Greedy;
    EXPECT_NE(a.cacheKey(), c.cacheKey());
    JobSpec d = a;
    d.faults = fault::FaultPlan::patchFailure(3);
    EXPECT_NE(a.cacheKey(), d.cacheKey());
    JobSpec e = a;
    e.maxInstructions = 1000;
    EXPECT_NE(a.cacheKey(), e.cacheKey());
}

TEST(JobSchema, HashBytesAvalanches)
{
    EXPECT_EQ(hashBytes("stitch"), hashBytes("stitch"));
    EXPECT_NE(hashBytes("stitch"), hashBytes("stitcH"));
    EXPECT_NE(hashBytes(""), hashBytes(std::string(1, '\0')));
}

// ---------------------------------------------------------------- //
// ResultCache

CacheEntry
dummyEntry(const std::string &tag)
{
    CacheEntry entry;
    entry.report = obs::Json::object();
    entry.report.set("tag", tag);
    entry.derived = obs::Json::object();
    entry.derived.set("tag", tag);
    return entry;
}

TEST(ResultCache, MemoryLayerRoundTripsAndTracksLru)
{
    ResultCache cache("", /*memEntries=*/1);
    JobSpec a = cheapSpec();
    JobSpec b = cheapSpec(apps::AppMode::Stitch);

    EXPECT_FALSE(cache.lookup(a).has_value());
    cache.store(a, dummyEntry("a"));
    auto hit = cache.lookup(a);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->report.get("tag").asString(), "a");

    // Capacity one: storing b evicts a.
    cache.store(b, dummyEntry("b"));
    EXPECT_FALSE(cache.lookup(a).has_value());
    EXPECT_TRUE(cache.lookup(b).has_value());

    auto stats = cache.stats();
    EXPECT_EQ(stats.memHits, 2u);
    EXPECT_EQ(stats.stores, 2u);
}

TEST(ResultCache, DiskLayerPersistsAcrossInstances)
{
    const std::string dir = scratchDir("disk");
    JobSpec spec = cheapSpec();
    {
        ResultCache cache(dir);
        cache.store(spec, dummyEntry("persisted"));
    }
    ResultCache fresh(dir);
    auto hit = fresh.lookup(spec);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->report.get("tag").asString(), "persisted");
    EXPECT_EQ(fresh.stats().diskHits, 1u);
    // The disk hit was promoted into memory.
    EXPECT_TRUE(fresh.lookup(spec).has_value());
    EXPECT_EQ(fresh.stats().memHits, 1u);
}

TEST(ResultCache, StaleStampInvalidatesEntry)
{
    const std::string dir = scratchDir("stamp");
    JobSpec spec = cheapSpec();
    ResultCache cache(dir);
    cache.store(spec, dummyEntry("stale"));

    // Doctor the stored stamp: a version bump must retire the entry.
    const std::string path = dir + "/" + spec.cacheKey() + ".json";
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const std::string stamp = cacheStamp();
    auto at = text.find(stamp);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, stamp.size(), "job0-report0-engine0");
    std::ofstream(path) << text;

    ResultCache fresh(dir);
    EXPECT_FALSE(fresh.lookup(spec).has_value());
    EXPECT_EQ(fresh.stats().invalidated, 1u);
    EXPECT_EQ(fresh.stats().diskHits, 0u);
}

TEST(ResultCache, SpecEchoMismatchDegradesToMiss)
{
    const std::string dir = scratchDir("echo");
    JobSpec a = cheapSpec();
    JobSpec b = cheapSpec(apps::AppMode::Stitch);
    ResultCache cache(dir);
    cache.store(a, dummyEntry("a"));

    // Simulate a hash collision: b's key file holds a's entry.
    fs::copy_file(dir + "/" + a.cacheKey() + ".json",
                  dir + "/" + b.cacheKey() + ".json");
    ResultCache fresh(dir);
    EXPECT_FALSE(fresh.lookup(b).has_value());
    EXPECT_EQ(fresh.stats().invalidated, 1u);
    // The honest entry still hits.
    EXPECT_TRUE(fresh.lookup(a).has_value());
}

TEST(ResultCache, CorruptFileIsAMissNotAnError)
{
    const std::string dir = scratchDir("corrupt");
    JobSpec spec = cheapSpec();
    ResultCache cache(dir);
    cache.store(spec, dummyEntry("x"));
    std::ofstream(dir + "/" + spec.cacheKey() + ".json")
        << "{ not json";
    ResultCache fresh(dir);
    EXPECT_FALSE(fresh.lookup(spec).has_value());
    EXPECT_EQ(fresh.stats().invalidated, 1u);
}

// ---------------------------------------------------------------- //
// JobEngine

TEST(JobEngine, PriorityOrdersClaimsAndDuplicatesCoalesce)
{
    // One worker, two submissions of the same spec at different
    // priorities: the high-priority job must be claimed first (and
    // simulate); the earlier, low-priority one then hits the cache.
    JobEngine engine;
    const int low = engine.submit(cheapSpec());
    JobSpec urgent = cheapSpec();
    urgent.priority = 10;
    const int high = engine.submit(urgent);
    engine.run();

    EXPECT_EQ(engine.result(high).status,
              JobResult::Status::Completed);
    EXPECT_FALSE(engine.result(high).cached);
    EXPECT_EQ(engine.result(low).status,
              JobResult::Status::Completed);
    EXPECT_TRUE(engine.result(low).cached);
    EXPECT_EQ(engine.result(low).report.dump(),
              engine.result(high).report.dump());
}

TEST(JobEngine, TypedFailureDoesNotSinkTheBatch)
{
    // The naive half of a dead-link fault scenario: the healthy plan
    // routes over the dead link, so the run is rejected with a
    // ConfigError *inside the worker* — after submit-time validation
    // passed. The batch must finish; the failure must be typed.
    JobEngine engine;
    JobSpec good = cheapSpec();
    JobSpec naive;
    naive.app = "APP3-svm-enc";
    naive.mode = apps::AppMode::Stitch;
    naive.samplesShort = 1;
    naive.samplesLong = 2;
    for (const auto &link : fault::allSnocLinks())
        if (link.name() == "t9-t10")
            naive.faults = fault::FaultPlan::linkFailure(link);
    naive.healthFromFaults = false; // keep the healthy plan
    const int ok = engine.submit(good);
    const int bad = engine.submit(naive);
    engine.run();

    EXPECT_EQ(engine.result(ok).status, JobResult::Status::Completed);
    ASSERT_EQ(engine.result(bad).status, JobResult::Status::Failed);
    EXPECT_EQ(engine.result(bad).errorKind, "config");
    EXPECT_FALSE(engine.result(bad).error.empty());

    // Eager validation: an invalid spec never reaches the queue.
    JobSpec invalid = cheapSpec();
    invalid.app = "no-such-app";
    EXPECT_THROW(engine.submit(invalid), fault::ConfigError);
}

TEST(JobEngine, CancelMidQueueSkipsTheJob)
{
    JobEngine engine;
    const int first = engine.submit(cheapSpec());
    JobSpec other = cheapSpec(apps::AppMode::Locus);
    const int middle = engine.submit(other);
    const int last = engine.submit(cheapSpec()); // dup of first
    EXPECT_TRUE(engine.cancel(middle));
    EXPECT_FALSE(engine.cancel(middle)); // already cancelled
    engine.run();

    EXPECT_EQ(engine.result(first).status,
              JobResult::Status::Completed);
    EXPECT_EQ(engine.result(middle).status,
              JobResult::Status::Cancelled);
    EXPECT_EQ(engine.result(last).status,
              JobResult::Status::Completed);
    EXPECT_FALSE(engine.cancel(first)); // finished jobs stay put

    obs::Json report = engine.serviceReportJson();
    const obs::Json &jobs =
        report.get("counters").get("svc").get("jobs");
    EXPECT_EQ(jobs.get("cancelled").asUint(), 1u);
    EXPECT_EQ(jobs.get("completed").asUint(), 2u);
    EXPECT_EQ(jobs.get("simulated").asUint(), 1u);
    EXPECT_EQ(jobs.get("cache_hits").asUint(), 1u);
}

TEST(JobEngine, ResultsDoNotDependOnWorkerCount)
{
    auto runBatch = [](int workers) {
        EngineOptions options;
        options.jobs = workers;
        JobEngine engine(options);
        std::vector<int> ids;
        ids.push_back(engine.submit(cheapSpec()));
        ids.push_back(
            engine.submit(cheapSpec(apps::AppMode::Stitch)));
        ids.push_back(engine.submit(cheapSpec())); // duplicate
        JobSpec app2 = cheapSpec();
        app2.app = "APP2-cnn";
        ids.push_back(engine.submit(app2));
        engine.run();
        std::vector<std::pair<std::string, bool>> out;
        for (int id : ids) {
            const JobResult &r = engine.result(id);
            out.emplace_back(r.report.dump() + r.derived.dump(),
                             r.cached);
        }
        return out;
    };
    auto serial = runBatch(1);
    auto threaded = runBatch(4);
    EXPECT_EQ(serial, threaded);
}

TEST(JobEngine, InstructionBudgetMapsToInstructionLimit)
{
    JobEngine engine;
    JobSpec spec = cheapSpec();
    spec.maxInstructions = 500; // far too few to finish a sample
    const int id = engine.submit(spec);
    engine.run();
    const JobResult &result = engine.result(id);
    ASSERT_EQ(result.status, JobResult::Status::Completed);
    EXPECT_EQ(result.derived.get("termination").asString(),
              "instruction-limit");
}

TEST(JobEngine, WarmDiskCacheSimulatesNothing)
{
    const std::string dir = scratchDir("engine_disk");
    EngineOptions options;
    options.cacheDir = dir;
    auto counters = [](JobEngine &engine) {
        obs::Json report = engine.serviceReportJson();
        const obs::Json &jobs =
            report.get("counters").get("svc").get("jobs");
        return std::make_pair(jobs.get("simulated").asUint(),
                              jobs.get("cache_hits").asUint());
    };
    std::string coldReport;
    {
        JobEngine engine(options);
        const int id = engine.submit(cheapSpec());
        engine.run();
        coldReport = engine.result(id).report.dump();
        EXPECT_EQ(counters(engine),
                  std::make_pair(std::uint64_t{1}, std::uint64_t{0}));
    }
    {
        JobEngine engine(options); // fresh process, warm disk
        const int id = engine.submit(cheapSpec());
        engine.run();
        EXPECT_TRUE(engine.result(id).cached);
        EXPECT_EQ(engine.result(id).report.dump(), coldReport);
        EXPECT_EQ(counters(engine),
                  std::make_pair(std::uint64_t{0}, std::uint64_t{1}));
    }
}

// ---------------------------------------------------------------- //
// stitchd wire protocol

TEST(Server, LocalhostRoundTrip)
{
    EngineOptions options;
    JobEngine engine(options);
    Server server(engine, /*port=*/0);
    ASSERT_GT(server.port(), 0);
    std::thread loop([&] { server.serve(/*maxRequests=*/3); });

    obs::Json job = minimalJob();
    job.set("mode", "baseline");
    job.set("samples_short", 1);
    job.set("samples_long", 2);

    obs::Json first = requestReport("127.0.0.1", server.port(), job);
    EXPECT_EQ(first.get("status").asString(), "ok");
    EXPECT_FALSE(first.get("cached").asBool());
    EXPECT_EQ(first.get("report").get("schema").asString(),
              "stitch-run-report");

    // The same job again: served from the engine's cache, same bytes.
    obs::Json second = requestReport("127.0.0.1", server.port(), job);
    EXPECT_TRUE(second.get("cached").asBool());
    EXPECT_EQ(first.get("report").dump(),
              second.get("report").dump());

    // A malformed job document answers with a typed error, and the
    // daemon keeps serving.
    obs::Json bad = minimalJob("no-such-app");
    obs::Json error = requestReport("127.0.0.1", server.port(), bad);
    EXPECT_EQ(error.get("status").asString(), "error");
    EXPECT_EQ(error.get("error_kind").asString(), "config");

    loop.join();
}

// ---------------------------------------------------------------- //
// artifact writers (obs::openArtifactFile hardening)

TEST(ArtifactWriter, CreatesMissingParentDirectories)
{
    const std::string dir = scratchDir("artifacts");
    const std::string path = dir + "/nested/deeper/report.json";
    obs::Json doc = obs::Json::object();
    doc.set("ok", true);
    obs::writeJsonFile(path, doc);
    ASSERT_TRUE(fs::exists(path));
    EXPECT_TRUE(obs::Json::parse([&] {
                    std::ifstream in(path);
                    return std::string(
                        (std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
                }()).get("ok").asBool());
}

TEST(ArtifactWriter, UnwritablePathThrowsTypedError)
{
    // A path that routes *through a regular file* cannot be created.
    const std::string dir = scratchDir("unwritable");
    fs::create_directories(dir);
    std::ofstream(dir + "/file") << "x";
    obs::Json doc = obs::Json::object();
    EXPECT_THROW(
        obs::writeJsonFile(dir + "/file/sub/report.json", doc),
        fault::ConfigError);
}

} // namespace
} // namespace stitch::svc

/** @file Stitching-algorithm (paper Algorithm 1) tests. */

#include <gtest/gtest.h>

#include <set>

#include "compiler/stitcher.hh"

namespace stitch::compiler
{
namespace
{

using core::PatchKind;

KernelProfile
profile(const std::string &name, Cycles sw,
        std::vector<std::pair<AccelTarget, Cycles>> options)
{
    KernelProfile p;
    p.name = name;
    p.swCycles = sw;
    p.options = std::move(options);
    return p;
}

void
expectValidPlan(const StitchPlan &plan,
                const core::StitchArch &arch, std::size_t kernels)
{
    ASSERT_EQ(plan.placements.size(), kernels);
    std::set<TileId> tiles;
    std::set<TileId> usedPatches;
    for (const auto &p : plan.placements) {
        ASSERT_GE(p.tile, 0);
        ASSERT_LT(p.tile, numTiles);
        EXPECT_TRUE(tiles.insert(p.tile).second)
            << "two kernels on tile " << p.tile;
        if (!p.accel)
            continue;
        // Kind compatibility.
        EXPECT_EQ(arch.kindOf(p.tile), p.accel->local);
        EXPECT_TRUE(usedPatches.insert(p.tile).second);
        if (p.accel->type == AccelTarget::Type::FusedPair) {
            EXPECT_EQ(arch.kindOf(p.remoteTile), p.accel->remote);
            EXPECT_TRUE(usedPatches.insert(p.remoteTile).second);
            EXPECT_LE(p.forwardHops + p.backHops,
                      core::rtl::maxFusionHops);
        }
    }
    std::string why;
    EXPECT_TRUE(plan.snoc.validate(&why)) << why;
}

TEST(Stitcher, BottleneckGetsTheBestOption)
{
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels = {
        profile("slow", 1000,
                {{AccelTarget::single(PatchKind::ATMA), 400}}),
        profile("fast", 100,
                {{AccelTarget::single(PatchKind::ATMA), 50}}),
    };
    auto plan = stitchApplication(kernels, arch);
    expectValidPlan(plan, arch, 2);
    ASSERT_TRUE(plan.placements[0].accel.has_value());
    EXPECT_EQ(plan.placements[0].cycles, 400u);
    EXPECT_EQ(plan.bottleneckCycles(), 400u);
}

TEST(Stitcher, FusionAllocatesTwoPatchesAndRoutes)
{
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels = {
        profile("heavy", 1000,
                {{AccelTarget::fused(PatchKind::ATAS,
                                     PatchKind::ATSA),
                  300},
                 {AccelTarget::single(PatchKind::ATAS), 600}}),
    };
    auto plan = stitchApplication(kernels, arch);
    expectValidPlan(plan, arch, 1);
    ASSERT_TRUE(plan.placements[0].accel.has_value());
    EXPECT_EQ(plan.placements[0].accel->type,
              AccelTarget::Type::FusedPair);
    EXPECT_EQ(plan.placements[0].cycles, 300u);
    EXPECT_FALSE(plan.snoc.paths().empty());
}

TEST(Stitcher, PatchExhaustionFallsBackToOtherKinds)
{
    // Five identical kernels all wanting the (single) best pair of
    // which only four exist: the fifth must settle for another
    // option, the paper's APP2 story.
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels;
    for (int i = 0; i < 5; ++i) {
        kernels.push_back(profile(
            "conv" + std::to_string(i), 1000,
            {{AccelTarget::fused(PatchKind::ATAS, PatchKind::ATMA),
              300},
             {AccelTarget::fused(PatchKind::ATSA, PatchKind::ATMA),
              400}}));
    }
    auto plan = stitchApplication(kernels, arch);
    expectValidPlan(plan, arch, 5);
    int fast = 0, slower = 0;
    for (const auto &p : plan.placements) {
        ASSERT_TRUE(p.accel.has_value());
        fast += p.cycles == 300;
        slower += p.cycles == 400;
    }
    EXPECT_EQ(fast, 4);   // all four {AT-AS} locals
    EXPECT_EQ(slower, 1); // the fifth takes the {AT-SA} pair
}

TEST(Stitcher, NoFusionModeUsesSinglesOnly)
{
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels = {
        profile("k", 1000,
                {{AccelTarget::fused(PatchKind::ATMA,
                                     PatchKind::ATMA),
                  200},
                 {AccelTarget::single(PatchKind::ATMA), 500}}),
    };
    StitchOptions options;
    options.allowFusion = false;
    auto plan = stitchApplication(kernels, arch, options);
    ASSERT_TRUE(plan.placements[0].accel.has_value());
    EXPECT_EQ(plan.placements[0].accel->type,
              AccelTarget::Type::SinglePatch);
    EXPECT_EQ(plan.placements[0].cycles, 500u);
}

TEST(Stitcher, AutoPolicyPrefersSinglesWhenFusionStarves)
{
    // Eight equal kernels; fusing halves coverage. Singles win.
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels;
    for (int i = 0; i < 16; ++i) {
        kernels.push_back(profile(
            "k" + std::to_string(i), 1000,
            {{AccelTarget::fused(PatchKind::ATMA, PatchKind::ATMA),
              400},
             {AccelTarget::single(PatchKind::ATMA), 500},
             {AccelTarget::single(PatchKind::ATAS), 550},
             {AccelTarget::single(PatchKind::ATSA), 550}}));
    }
    auto plan = stitchApplication(kernels, arch);
    // Fused-first would leave 8 kernels at 1000; singles-first
    // leaves none above 550.
    EXPECT_LE(plan.bottleneckCycles(), 550u);
}

TEST(Stitcher, GreedyPolicyMatchesAlgorithmOne)
{
    // Same scenario, forced to the paper's literal greedy: fusion
    // for each successive bottleneck until patches run out.
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels;
    for (int i = 0; i < 16; ++i) {
        kernels.push_back(profile(
            "k" + std::to_string(i), 1000,
            {{AccelTarget::fused(PatchKind::ATMA, PatchKind::ATMA),
              400},
             {AccelTarget::single(PatchKind::ATMA), 500}}));
    }
    StitchOptions options;
    options.policy = StitchPolicy::Greedy;
    auto plan = stitchApplication(kernels, arch, options);
    expectValidPlan(plan, arch, 16);
    EXPECT_EQ(plan.bottleneckCycles(), 1000u); // starved kernels
}

TEST(Stitcher, UnimprovableBottleneckStops)
{
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels = {
        profile("stuck", 1000, {}), // no options at all
        profile("other", 100,
                {{AccelTarget::single(PatchKind::ATMA), 50}}),
    };
    auto plan = stitchApplication(kernels, arch);
    expectValidPlan(plan, arch, 2);
    // Algorithm 1 returns once the bottleneck cannot improve; the
    // light kernel keeps its software cycles.
    EXPECT_EQ(plan.bottleneckCycles(), 1000u);
    EXPECT_FALSE(plan.placements[1].accel.has_value());
}

TEST(Stitcher, SixteenKernelsSixteenTiles)
{
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels;
    for (int i = 0; i < 16; ++i) {
        kernels.push_back(profile(
            "k" + std::to_string(i), 500 + 10 * i,
            {{AccelTarget::single(PatchKind::ATMA), 300},
             {AccelTarget::single(PatchKind::ATAS), 350},
             {AccelTarget::single(PatchKind::ATSA), 350}}));
    }
    auto plan = stitchApplication(kernels, arch);
    expectValidPlan(plan, arch, 16);
}

TEST(Stitcher, DescribeMentionsKernelsAndTargets)
{
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels = {
        profile("fftX", 1000,
                {{AccelTarget::fused(PatchKind::ATMA,
                                     PatchKind::ATAS),
                  300}}),
    };
    auto plan = stitchApplication(kernels, arch);
    auto text = plan.describe(kernels, arch);
    EXPECT_NE(text.find("fftX"), std::string::npos);
    EXPECT_NE(text.find("AT-MA"), std::string::npos);
    EXPECT_NE(text.find("hops"), std::string::npos);
}

TEST(Stitcher, TooManyKernelsPanics)
{
    auto arch = core::StitchArch::standard();
    std::vector<KernelProfile> kernels(17);
    EXPECT_DEATH(stitchApplication(kernels, arch),
                 "more kernels than tiles");
}

} // namespace
} // namespace stitch::compiler

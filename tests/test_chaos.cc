/**
 * @file
 * Service-tier chaos tests: the ServiceFaultPlan / ServiceFaultInjector
 * keyed-draw machinery (purity, stream independence, seed
 * reproducibility), the deterministic RetryPolicy backoff schedule,
 * and every injectable scenario end to end — worker throws retried in
 * place, retry exhaustion, deadline watchdog trips, cache write
 * failures and torn entries, and wire-level resets and malformed
 * frames against a live in-process Server. Plus the drain
 * regression: stopping the server mid-chaos-request must still yield
 * a complete, valid v2 service report.
 */

#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "svc/chaos.hh"
#include "svc/engine.hh"
#include "svc/server.hh"

namespace stitch::svc
{
namespace
{

namespace fs = std::filesystem;

std::string
scratchDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "stitch_chaos_" + name;
    fs::remove_all(dir);
    return dir;
}

JobSpec
cheapSpec(int variant = 0)
{
    JobSpec spec;
    spec.app = "APP1-gesture";
    spec.mode = apps::AppMode::Baseline;
    spec.samplesShort = 1;
    spec.samplesLong = 2 + variant;
    return spec;
}

obs::Json
cheapJobDoc(int variant = 0)
{
    return cheapSpec(variant).toJson();
}

const obs::Json &
resilienceCounters(const obs::Json &report)
{
    return report.get("counters").get("svc").get("resilience");
}

// ---------------------------------------------------------------- //
// ServiceFaultPlan / ServiceFaultInjector

TEST(ServiceFaultPlan, ValidationRejectsBadProbabilities)
{
    ServiceFaultPlan plan;
    EXPECT_NO_THROW(plan.validate());
    EXPECT_FALSE(plan.anyFault());

    plan.workerThrowProb = 1.5;
    EXPECT_THROW(plan.validate(), fault::ConfigError);
    plan.workerThrowProb = -0.1;
    EXPECT_THROW(plan.validate(), fault::ConfigError);

    // A stall probability without a stall length is meaningless.
    plan = ServiceFaultPlan{};
    plan.workerStallProb = 0.5;
    plan.stallMs = 0;
    EXPECT_THROW(plan.validate(), fault::ConfigError);

    // The injector validates eagerly at construction.
    plan.workerStallProb = 2.0;
    EXPECT_THROW(ServiceFaultInjector{plan}, fault::ConfigError);
}

TEST(ServiceFaultPlan, NamedConstructorsArmExactlyOneMechanism)
{
    EXPECT_TRUE(ServiceFaultPlan::workerThrows(0.5, 1)
                    .anyWorkerFault());
    EXPECT_FALSE(ServiceFaultPlan::workerThrows(0.5, 1)
                     .anyCacheFault());
    EXPECT_TRUE(ServiceFaultPlan::workerStalls(0.5, 10, 1)
                    .anyWorkerFault());
    EXPECT_TRUE(ServiceFaultPlan::cacheWriteFailures(0.5, 1)
                    .anyCacheFault());
    EXPECT_TRUE(ServiceFaultPlan::tornCacheEntries(0.5, 1)
                    .anyCacheFault());
    EXPECT_TRUE(ServiceFaultPlan::connectionResets(0.5, 1)
                    .anyWireFault());
    EXPECT_TRUE(ServiceFaultPlan::malformedFrames(0.5, 1)
                    .anyWireFault());
    EXPECT_FALSE(ServiceFaultPlan::none().anyFault());
    EXPECT_FALSE(ServiceFaultPlan::none().describe().empty());
    EXPECT_NE(ServiceFaultPlan::workerThrows(0.5, 1).describe(),
              ServiceFaultPlan::none().describe());
}

TEST(ServiceFaultInjector, DrawsArePureFunctionsOfPlanAndIdentity)
{
    ServiceFaultPlan plan;
    plan.seed = 1234;
    plan.workerThrowProb = 0.5;
    plan.workerStallProb = 0.5;
    plan.stallMs = 5;
    plan.cacheWriteFailProb = 0.5;
    plan.connResetProb = 0.5;

    const ServiceFaultInjector a(plan), b(plan);
    for (int i = 0; i < 64; ++i) {
        // Same plan, same identity -> same verdict, in any order,
        // from any instance. This is what makes a multi-worker
        // engine replay a scenario exactly.
        EXPECT_EQ(a.throwOnAttempt(i, 1), b.throwOnAttempt(i, 1));
        EXPECT_EQ(a.throwOnAttempt(i, 2), b.throwOnAttempt(i, 2));
        EXPECT_EQ(a.stallUs(i, 1), b.stallUs(i, 1));
        EXPECT_EQ(a.failCacheWrite(static_cast<std::uint64_t>(i)),
                  b.failCacheWrite(static_cast<std::uint64_t>(i)));
        EXPECT_EQ(a.resetConnection(static_cast<std::uint64_t>(i)),
                  b.resetConnection(static_cast<std::uint64_t>(i)));
    }
}

TEST(ServiceFaultInjector, StreamsAndSeedsAreIndependent)
{
    ServiceFaultPlan plan;
    plan.seed = 99;
    plan.workerThrowProb = 0.5;
    plan.cacheWriteFailProb = 0.5;
    const ServiceFaultInjector injector(plan);

    ServiceFaultPlan other = plan;
    other.seed = 100;
    const ServiceFaultInjector reseeded(other);

    // Each mechanism draws from its own stream and each seed from its
    // own sequence: over 64 identities the patterns must diverge.
    bool streamsDiffer = false, seedsDiffer = false;
    for (int i = 0; i < 64; ++i) {
        if (injector.throwOnAttempt(i, 1) !=
            injector.failCacheWrite(static_cast<std::uint64_t>(i)))
            streamsDiffer = true;
        if (injector.throwOnAttempt(i, 1) !=
            reseeded.throwOnAttempt(i, 1))
            seedsDiffer = true;
    }
    EXPECT_TRUE(streamsDiffer);
    EXPECT_TRUE(seedsDiffer);

    // And the attempt is part of the identity: retries get fresh
    // draws, not a replay of the first attempt.
    bool attemptsDiffer = false;
    for (int i = 0; i < 64 && !attemptsDiffer; ++i)
        attemptsDiffer =
            injector.throwOnAttempt(i, 1) !=
            injector.throwOnAttempt(i, 2);
    EXPECT_TRUE(attemptsDiffer);
}

TEST(ServiceFaultInjector, ProbabilityExtremesAreCertainties)
{
    const ServiceFaultInjector always(
        ServiceFaultPlan::workerThrows(1.0, 5));
    const ServiceFaultInjector never(ServiceFaultPlan::none());
    for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(always.throwOnAttempt(i, 1));
        EXPECT_FALSE(never.throwOnAttempt(i, 1));
        EXPECT_EQ(never.stallUs(i, 1), 0u);
        EXPECT_FALSE(
            never.failCacheWrite(static_cast<std::uint64_t>(i)));
    }
}

// ---------------------------------------------------------------- //
// RetryPolicy

TEST(RetryPolicy, ValidatesItsKnobs)
{
    RetryPolicy policy;
    EXPECT_NO_THROW(policy.validate());
    EXPECT_FALSE(policy.enabled()); // one attempt = no retry

    policy.maxAttempts = 0;
    EXPECT_THROW(policy.validate(), fault::ConfigError);
    policy = RetryPolicy{};
    policy.baseDelayMs = -1.0;
    EXPECT_THROW(policy.validate(), fault::ConfigError);
    policy = RetryPolicy{};
    policy.multiplier = 0.5; // backoff must not shrink
    EXPECT_THROW(policy.validate(), fault::ConfigError);
}

TEST(RetryPolicy, BackoffIsDeterministicJitteredAndCapped)
{
    RetryPolicy policy;
    policy.maxAttempts = 8;
    policy.baseDelayMs = 2.0;
    policy.maxDelayMs = 10.0;
    policy.multiplier = 2.0;
    policy.seed = 77;

    RetryPolicy same = policy;
    bool anyNonZero = false;
    for (int attempt = 1; attempt < 8; ++attempt) {
        const std::uint64_t us = policy.delayUsAfter(3, attempt);
        // Reproducible: the schedule is a pure function of
        // (policy, key, attempt).
        EXPECT_EQ(us, same.delayUsAfter(3, attempt));
        // Full jitter within the capped ceiling.
        const double ceilMs = std::min(
            policy.maxDelayMs,
            policy.baseDelayMs *
                std::pow(policy.multiplier, attempt - 1));
        EXPECT_LE(us, static_cast<std::uint64_t>(ceilMs * 1000.0));
        anyNonZero = anyNonZero || us > 0;
    }
    EXPECT_TRUE(anyNonZero);

    // Different keys get different schedules (no thundering herd).
    bool keysDiffer = false;
    for (std::uint64_t key = 0; key < 32 && !keysDiffer; ++key)
        keysDiffer = policy.delayUsAfter(key, 2) !=
                     policy.delayUsAfter(key + 100, 2);
    EXPECT_TRUE(keysDiffer);
}

// ---------------------------------------------------------------- //
// Engine-path chaos

TEST(ChaosEngine, InjectedThrowIsRetriedInPlaceToCompletion)
{
    // Find a seed whose job-0 draw throws on attempt 1 but not on
    // attempt 2 — self-contained, no magic constants.
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 200; ++s) {
        ServiceFaultInjector probe(
            ServiceFaultPlan::workerThrows(0.5, s));
        if (probe.throwOnAttempt(0, 1) &&
            !probe.throwOnAttempt(0, 2)) {
            seed = s;
            break;
        }
    }
    ASSERT_NE(seed, 0u);

    EngineOptions options;
    options.chaos = ServiceFaultPlan::workerThrows(0.5, seed);
    options.retry.maxAttempts = 2;
    options.retry.baseDelayMs = 0.05;
    options.retry.maxDelayMs = 0.5;
    JobEngine engine(options);
    const int id = engine.submit(cheapSpec());
    engine.run();

    const JobResult &result = engine.result(id);
    ASSERT_EQ(result.status, JobResult::Status::Completed);
    EXPECT_EQ(result.attempts, 2);

    const obs::Json report = engine.serviceReportJson();
    EXPECT_EQ(resilienceCounters(report).get("retries").asUint(), 1u);
    EXPECT_GE(resilienceCounters(report)
                  .get("injected_throws")
                  .asUint(),
              1u);
}

TEST(ChaosEngine, RetryExhaustionFailsTypedAsInjected)
{
    EngineOptions options;
    options.chaos = ServiceFaultPlan::workerThrows(1.0, 11);
    options.retry.maxAttempts = 3;
    options.retry.baseDelayMs = 0.05;
    options.retry.maxDelayMs = 0.5;
    JobEngine engine(options);
    const int id = engine.submit(cheapSpec());
    engine.run();

    const JobResult &result = engine.result(id);
    ASSERT_EQ(result.status, JobResult::Status::Failed);
    EXPECT_EQ(result.errorKind, "injected");
    EXPECT_EQ(result.attempts, 3);
    const obs::Json report = engine.serviceReportJson();
    EXPECT_EQ(
        resilienceCounters(report).get("retry_exhausted").asUint(),
        1u);
}

TEST(ChaosEngine, WithoutRetryBudgetInjectedThrowFailsFirstAttempt)
{
    EngineOptions options;
    options.chaos = ServiceFaultPlan::workerThrows(1.0, 12);
    JobEngine engine(options);
    const int id = engine.submit(cheapSpec());
    engine.run();
    const JobResult &result = engine.result(id);
    ASSERT_EQ(result.status, JobResult::Status::Failed);
    EXPECT_EQ(result.errorKind, "injected");
    EXPECT_EQ(result.attempts, 1);
}

TEST(ChaosEngine, SameSeedReproducesTheSameOutcomes)
{
    auto outcomes = [](std::uint64_t seed) {
        EngineOptions options;
        options.chaos = ServiceFaultPlan::workerThrows(0.5, seed);
        JobEngine engine(options);
        std::vector<int> ids;
        for (int i = 0; i < 6; ++i)
            ids.push_back(engine.submit(cheapSpec(i)));
        engine.run();
        std::string signature;
        for (int id : ids) {
            const JobResult &r = engine.result(id);
            signature += jobStatusName(r.status);
            signature += ":" + r.errorKind + ";";
        }
        return signature;
    };
    EXPECT_EQ(outcomes(21), outcomes(21));
    // ... and the seed matters (some seed in a short range differs).
    bool anyDiffers = false;
    const std::string base = outcomes(21);
    for (std::uint64_t s = 22; s < 30 && !anyDiffers; ++s)
        anyDiffers = outcomes(s) != base;
    EXPECT_TRUE(anyDiffers);
}

TEST(ChaosEngine, StalledWorkerTripsDeadlineWatchdog)
{
    EngineOptions options;
    options.chaos = ServiceFaultPlan::workerStalls(1.0, 2000, 31);
    options.watchdogPollMs = 2;
    JobEngine engine(options);
    JobSpec spec = cheapSpec();
    spec.deadlineMs = 30;
    const int id = engine.submit(spec);
    const auto start = std::chrono::steady_clock::now();
    engine.run();
    const double tookMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    const JobResult &result = engine.result(id);
    ASSERT_EQ(result.status, JobResult::Status::Failed);
    EXPECT_EQ(result.errorKind, "deadline");
    // The watchdog freed the worker long before the 2 s stall.
    EXPECT_LT(tookMs, 1500.0);

    const obs::Json report = engine.serviceReportJson();
    EXPECT_EQ(
        resilienceCounters(report).get("watchdog_trips").asUint(),
        1u);
    EXPECT_EQ(
        resilienceCounters(report).get("deadline_exceeded").asUint(),
        1u);
}

TEST(ChaosEngine, ShortStallWithoutDeadlineCompletes)
{
    EngineOptions options;
    options.chaos = ServiceFaultPlan::workerStalls(1.0, 3, 32);
    JobEngine engine(options);
    const int id = engine.submit(cheapSpec());
    engine.run();
    EXPECT_EQ(engine.result(id).status, JobResult::Status::Completed);
    const obs::Json report = engine.serviceReportJson();
    EXPECT_GE(
        resilienceCounters(report).get("injected_stalls").asUint(),
        1u);
}

TEST(ChaosEngine, GenerousDeadlineNeverTrips)
{
    JobEngine engine;
    JobSpec spec = cheapSpec();
    spec.deadlineMs = 60000;
    const int id = engine.submit(spec);
    engine.run();
    EXPECT_EQ(engine.result(id).status, JobResult::Status::Completed);
    const obs::Json report = engine.serviceReportJson();
    EXPECT_EQ(
        resilienceCounters(report).get("watchdog_trips").asUint(),
        0u);
}

TEST(ChaosEngine, CacheWriteFailuresDegradeWithoutFailingJobs)
{
    const std::string dir = scratchDir("engine_degrade");
    EngineOptions options;
    options.cacheDir = dir;
    options.chaos = ServiceFaultPlan::cacheWriteFailures(1.0, 41);
    JobEngine engine(options);
    std::vector<int> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(engine.submit(cheapSpec(i)));
    engine.run();

    for (int id : ids)
        EXPECT_EQ(engine.result(id).status,
                  JobResult::Status::Completed);
    EXPECT_TRUE(engine.cache().memoryOnly());
    EXPECT_EQ(engine.cache().stats().writeFailures,
              ResultCache::writeFailureLimit);

    // The degradation is visible in the service report and the
    // introspection document.
    const obs::Json report = engine.serviceReportJson();
    const obs::Json &cache =
        report.get("counters").get("svc").get("cache");
    EXPECT_EQ(cache.get("write_failures").asUint(),
              ResultCache::writeFailureLimit);
    EXPECT_EQ(cache.get("degraded").asUint(), 1u);
    EXPECT_TRUE(engine.introspectionJson()
                    .get("cache")
                    .get("degraded")
                    .asBool());
}

TEST(ChaosEngine, TornWritesAreQuarantinedOnRestart)
{
    const std::string dir = scratchDir("engine_torn");
    std::string key;
    {
        EngineOptions options;
        options.cacheDir = dir;
        options.chaos = ServiceFaultPlan::tornCacheEntries(1.0, 51);
        JobEngine engine(options);
        const int id = engine.submit(cheapSpec());
        engine.run();
        EXPECT_EQ(engine.result(id).status,
                  JobResult::Status::Completed);
        key = engine.result(id).key;
        EXPECT_EQ(engine.cache().stats().tornWrites, 1u);
    }
    ASSERT_TRUE(fs::exists(dir + "/" + key + ".json"));

    // A restarted engine's recovery scan quarantines the torn entry
    // and the job simulates again instead of reading garbage.
    EngineOptions fresh;
    fresh.cacheDir = dir;
    JobEngine engine(fresh);
    EXPECT_EQ(engine.cache().stats().quarantined, 1u);
    const int id = engine.submit(cheapSpec());
    engine.run();
    EXPECT_EQ(engine.result(id).status, JobResult::Status::Completed);
    EXPECT_FALSE(engine.result(id).cached);
}

// ---------------------------------------------------------------- //
// Wire-path chaos

TEST(ChaosWire, InjectedResetThrowsHereAndServerSurvives)
{
    EngineOptions engineOptions;
    JobEngine engine(engineOptions);
    Server server(engine, /*port=*/0);
    std::thread loop([&] { server.serve(/*maxRequests=*/2); });

    const ServiceFaultInjector chaos(
        ServiceFaultPlan::connectionResets(1.0, 61));
    EXPECT_THROW(requestReport("127.0.0.1", server.port(),
                               cheapJobDoc(), &chaos,
                               /*requestIndex=*/0),
                 fault::ConfigError);

    // The server answered the torn frame typed and kept serving.
    obs::Json health = requestReport(
        "127.0.0.1", server.port(), [] {
            obs::Json doc = obs::Json::object();
            doc.set("cmd", "healthz");
            return doc;
        }());
    EXPECT_EQ(health.get("status").asString(), "ok");
    loop.join();
}

TEST(ChaosWire, RetryingClientRecoversFromTransientReset)
{
    // Find a seed where request 0 resets on attempt 1 but not on
    // attempt 2 (the client folds the attempt into the chaos key).
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 200; ++s) {
        ServiceFaultInjector probe(
            ServiceFaultPlan::connectionResets(0.5, s));
        if (probe.resetConnection(0) &&
            !probe.resetConnection(std::uint64_t{1} << 32)) {
            seed = s;
            break;
        }
    }
    ASSERT_NE(seed, 0u);

    EngineOptions engineOptions;
    JobEngine engine(engineOptions);
    Server server(engine, /*port=*/0);
    std::thread loop([&] { server.serve(/*maxRequests=*/2); });

    const ServiceFaultInjector chaos(
        ServiceFaultPlan::connectionResets(0.5, seed));
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.baseDelayMs = 0.05;
    policy.maxDelayMs = 0.5;
    int attempts = 0;
    obs::Json response = requestReportWithRetry(
        "127.0.0.1", server.port(), cheapJobDoc(), policy,
        /*requestIndex=*/0, &chaos, &attempts);
    EXPECT_EQ(response.get("status").asString(), "ok");
    EXPECT_EQ(attempts, 2);

    server.stop();
    loop.join();
}

TEST(ChaosWire, MalformedFrameAnswersTypedConfigError)
{
    EngineOptions engineOptions;
    JobEngine engine(engineOptions);
    Server server(engine, /*port=*/0);
    std::thread loop([&] { server.serve(/*maxRequests=*/1); });

    const ServiceFaultInjector chaos(
        ServiceFaultPlan::malformedFrames(1.0, 71));
    obs::Json response =
        requestReport("127.0.0.1", server.port(), cheapJobDoc(),
                      &chaos, /*requestIndex=*/0);
    EXPECT_EQ(response.get("status").asString(), "error");
    EXPECT_EQ(response.get("error_kind").asString(), "config");
    loop.join();
}

TEST(ChaosWire, DrainMidChaosStillYieldsValidV2Report)
{
    // The stitchd shutdown path: stop() lands while a chaos-stalled
    // request is in flight. The in-flight request must complete (the
    // drain) and the final service report must be a full v2 document
    // — this is exactly what the SIGINT/SIGTERM handler triggers.
    EngineOptions engineOptions;
    engineOptions.chaos = ServiceFaultPlan::workerStalls(1.0, 80, 81);
    JobEngine engine(engineOptions);
    Server server(engine, /*port=*/0);
    std::thread loop([&] { server.serve(); });

    obs::Json response;
    std::thread client([&] {
        response = requestReport("127.0.0.1", server.port(),
                                 cheapJobDoc());
    });
    // Let the request reach its 80 ms injected stall, then "signal".
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.stop();
    loop.join(); // returns only after the in-flight request drained
    client.join();

    EXPECT_EQ(response.get("status").asString(), "ok");
    obs::Json report = engine.serviceReportJson();
    EXPECT_EQ(report.get("schema").asString(),
              "stitch-service-report");
    EXPECT_EQ(report.get("version").asUint(), serviceReportVersion);
    const obs::Json &jobs =
        report.get("counters").get("svc").get("jobs");
    EXPECT_EQ(jobs.get("completed").asUint(), 1u);
    EXPECT_GE(
        resilienceCounters(report).get("injected_stalls").asUint(),
        1u);
}

} // namespace
} // namespace stitch::svc

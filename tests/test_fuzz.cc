/** @file Differential fuzzing of the full compiler pipeline.
 *
 *  Random SPM-compute loops are generated, compiled for every target,
 *  and executed; compileKernel's built-in validation compares each
 *  accelerated variant's memory outputs against the software run bit
 *  for bit. Any mapper/rewriter/patch-semantics bug that changes
 *  behaviour aborts the test.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compiler/driver.hh"
#include "isa/assembler.hh"
#include "mem/addrmap.hh"

namespace stitch::compiler
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

/** Build a random but well-formed SPM-processing loop. */
KernelInput
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    Assembler a("fuzz");

    constexpr auto spm = static_cast<std::int32_t>(mem::spmBase);
    a.li(s2, spm);        // input array [64]
    a.li(s3, spm + 256);  // output array [64]

    auto loop = a.newLabel();
    a.li(t0, 0);  // index
    a.li(a0, 1);  // rolling accumulator
    a.bind(loop);
    a.slli(t1, t0, 2);
    a.add(t2, s2, t1);
    a.lw(t3, t2, 0);

    // Random compute body over t3..t7/a0.
    const RegId temps[] = {t3, t4, t5, t6, t7, a0};
    int ops = static_cast<int>(rng.range(3, 10));
    for (int i = 0; i < ops; ++i) {
        RegId rd = temps[rng.range(0, 5)];
        RegId ra = temps[rng.range(0, 5)];
        RegId rb = temps[rng.range(0, 5)];
        switch (rng.range(0, 7)) {
          case 0: a.add(rd, ra, rb); break;
          case 1: a.sub(rd, ra, rb); break;
          case 2: a.mul(rd, ra, rb); break;
          case 3: a.xor_(rd, ra, rb); break;
          case 4: a.and_(rd, ra, rb); break;
          case 5: a.or_(rd, ra, rb); break;
          case 6:
            a.slli(rd, ra,
                   static_cast<std::int32_t>(rng.range(1, 7)));
            break;
          case 7:
            a.srai(rd, ra,
                   static_cast<std::int32_t>(rng.range(1, 7)));
            break;
        }
    }

    a.add(t2, s3, t1);
    a.sw(a0, t2, 0);
    a.addi(t0, t0, 1);
    a.slti(t8, t0, 64);
    a.bne(t8, zero, loop);
    a.halt();

    auto prog = a.finish();
    std::vector<Word> data;
    for (int i = 0; i < 64; ++i)
        data.push_back(static_cast<Word>(rng.next()) & 0xffff);
    prog.addDataWords(mem::spmBase, data);

    KernelInput input;
    input.program = std::move(prog);
    input.spmBaseRegs = {s2, s3};
    input.outputs = {{mem::spmBase + 256, 256}};
    return input;
}

class CompilerFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(CompilerFuzz, AllVariantsMatchSoftware)
{
    auto input = randomKernel(
        static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
    // compileKernel fatals if any variant's outputs diverge.
    auto compiled = compileKernel("fuzz", input);
    EXPECT_EQ(compiled.variants.size(), 13u);
    for (const auto &v : compiled.variants)
        EXPECT_LE(v.cycles, compiled.softwareCycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzz,
                         ::testing::Range(0, 24));

} // namespace
} // namespace stitch::compiler

/** @file Mapper tests: slot assignment, mux wiring, port matching,
 *  fused splitting, and semantic cross-validation of the generated
 *  19-bit configurations against the interpreted micro-DFG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "compiler/driver.hh"
#include "compiler/mapper.hh"
#include "core/patch.hh"
#include "isa/assembler.hh"
#include "mem/addrmap.hh"

namespace stitch::compiler
{
namespace
{

using namespace isa::reg;
using core::PatchKind;
using isa::Assembler;

Dfg
dfgOf(isa::Program &prog, std::vector<RegId> spmRegs = {})
{
    auto blocks = findBasicBlocks(prog, {});
    static const std::set<RegId> emptyLive;
    return Dfg::build(prog, blocks[0], spmRegs, &emptyLive);
}

const IseCandidate *
candidateWith(const std::vector<IseCandidate> &cands,
              const std::vector<int> &nodes)
{
    for (const auto &c : cands)
        if (c.nodes == nodes)
            return &c;
    return nullptr;
}

class TestSpm : public core::SpmPort
{
  public:
    Word
    load(Addr a) override
    {
        return data[(a - mem::spmBase) / 4];
    }

    void
    store(Addr a, Word v) override
    {
        data[(a - mem::spmBase) / 4] = v;
    }

    std::array<Word, 1024> data{};
};

/**
 * The central property: executing the mapped FusedConfig on the patch
 * datapath must equal interpreting the candidate's micro-DFG, for
 * random operand values.
 */
void
expectSemanticsMatch(const Dfg &dfg, const IseCandidate &cand,
                     const MapResult &map, std::uint64_t seed,
                     bool withSpm = false)
{
    ASSERT_TRUE(map.ok);
    auto micro = buildMicroDfg(dfg, cand, map.portExternal,
                               map.rd0Node, map.rd1Node);
    Rng rng(seed);
    for (int iter = 0; iter < 30; ++iter) {
        std::array<Word, 4> in;
        for (auto &v : in)
            v = withSpm
                    ? mem::spmBase +
                          (static_cast<Word>(rng.next()) % 256) * 4
                    : static_cast<Word>(rng.next());
        if (withSpm)
            in[1] = static_cast<Word>(rng.next()) % 64; // offsets

        TestSpm spmA, spmB;
        for (std::size_t i = 0; i < spmA.data.size(); ++i)
            spmA.data[i] = spmB.data[i] =
                static_cast<Word>(rng.next());

        core::NullSpmPort nullSpm;
        auto cfg = map.cfg;
        auto hw = core::executeCustom(cfg, in, spmA,
                                      cfg.usesRemote ? &nullSpm
                                                     : nullptr);
        auto sw = micro.evaluate(in, &spmB);
        EXPECT_EQ(hw.writeRd0, sw.writeRd0);
        EXPECT_EQ(hw.writeRd1, sw.writeRd1);
        if (hw.writeRd0 && sw.writeRd0) {
            EXPECT_EQ(hw.rd0, sw.rd0);
        }
        if (hw.writeRd1 && sw.writeRd1) {
            EXPECT_EQ(hw.rd1, sw.rd1);
        }
        EXPECT_EQ(spmA.data, spmB.data);
    }
}

TEST(Mapper, MulAddChainOnAtma)
{
    Assembler a("ma");
    a.mul(t2, t0, t1);
    a.add(t3, t2, t4);
    a.sw(t3, s2, 0); // consume so t3 is an output
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1});
    ASSERT_NE(cand, nullptr);

    auto map = mapCandidate(dfg, *cand,
                            AccelTarget::single(PatchKind::ATMA));
    ASSERT_TRUE(map.ok);
    EXPECT_EQ(map.cfg.localKind, PatchKind::ATMA);
    EXPECT_FALSE(map.cfg.usesRemote);
    expectSemanticsMatch(dfg, *cand, map, 11);

    // The same chain cannot live on AT-AS (no multiplier).
    EXPECT_FALSE(
        mapCandidate(dfg, *cand,
                     AccelTarget::single(PatchKind::ATAS))
            .ok);
}

TEST(Mapper, AddShiftChainOnAtas)
{
    Assembler a("as");
    a.add(t2, t0, t1);
    a.srl(t3, t2, t4);
    a.sw(t3, s2, 0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1});
    ASSERT_NE(cand, nullptr);
    auto map = mapCandidate(dfg, *cand,
                            AccelTarget::single(PatchKind::ATAS));
    ASSERT_TRUE(map.ok);
    expectSemanticsMatch(dfg, *cand, map, 12);
}

TEST(Mapper, ShiftAddChainOnAtsaNotAtas)
{
    Assembler a("sa");
    a.sll(t2, t0, t1);
    a.add(t3, t2, t4);
    a.sw(t3, s2, 0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1});
    ASSERT_NE(cand, nullptr);
    auto sa = mapCandidate(dfg, *cand,
                           AccelTarget::single(PatchKind::ATSA));
    ASSERT_TRUE(sa.ok);
    expectSemanticsMatch(dfg, *cand, sa, 13);
    // shift-then-add does not fit the add-then-shift patch.
    EXPECT_FALSE(mapCandidate(dfg, *cand,
                              AccelTarget::single(PatchKind::ATAS))
                     .ok);
}

TEST(Mapper, AtLoadOnAnyKind)
{
    Assembler a("at");
    a.add(t1, s2, t0);
    a.lw(t2, t1, 0);
    a.sw(t2, s3, 0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2, s3});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1});
    ASSERT_NE(cand, nullptr);
    for (auto kind :
         {PatchKind::ATMA, PatchKind::ATAS, PatchKind::ATSA}) {
        auto map = mapCandidate(dfg, *cand,
                                AccelTarget::single(kind));
        ASSERT_TRUE(map.ok) << core::patchKindName(kind);
        EXPECT_EQ(map.cfg.local.tMode, core::TMode::Load);
        expectSemanticsMatch(dfg, *cand, map, 14, true);
    }
}

TEST(Mapper, LoadMulAddOnAtma)
{
    // The conv2d inner pattern: SPM load feeding a MAC.
    Assembler a("lma");
    a.lw(t1, s2, 8);
    a.mul(t2, t1, t3);
    a.add(a0, a0, t2);
    a.sw(a0, s3, 0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2, s3});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1, 2});
    ASSERT_NE(cand, nullptr);
    auto map = mapCandidate(dfg, *cand,
                            AccelTarget::single(PatchKind::ATMA));
    ASSERT_TRUE(map.ok);
    EXPECT_EQ(map.cfg.local.tMode, core::TMode::Load);
    EXPECT_EQ(map.cfg.local.a1op, core::AluOp::Add); // base + 8
    expectSemanticsMatch(dfg, *cand, map, 15, true);
}

TEST(Mapper, StoreDataMustBeExternal)
{
    // A store whose data is computed inside the candidate cannot be
    // mapped (the LMAU's store data is hard-wired to in2).
    Assembler a("sd");
    a.add(t1, t0, t2); // data
    a.sw(t1, s2, 0);   // store it
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1});
    if (cand) {
        for (auto kind :
             {PatchKind::ATMA, PatchKind::ATAS, PatchKind::ATSA})
            EXPECT_FALSE(
                mapCandidate(dfg, *cand, AccelTarget::single(kind))
                    .ok);
    }
}

TEST(Mapper, FourNodeDiamondOnSinglePatch)
{
    // sub feeds both sra and and: the stage-1 broadcast handles it.
    Assembler a("dia");
    a.sub(t2, t0, t1);  // n0
    a.srai(t3, t2, 31); // n1
    a.and_(t4, t2, t3); // n2  (diamond join)
    a.sw(t4, s2, 0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1, 2});
    ASSERT_NE(cand, nullptr);
    auto map = mapCandidate(dfg, *cand,
                            AccelTarget::single(PatchKind::ATSA));
    ASSERT_TRUE(map.ok);
    expectSemanticsMatch(dfg, *cand, map, 16);
    // LOCUS is chains-only: the diamond must be rejected.
    EXPECT_FALSE(mapCandidate(dfg, *cand, AccelTarget::locus()).ok);
}

TEST(Mapper, FusedMulShiftNeedsTwoPatches)
{
    // mul -> srai has no single-patch home (AT-MA lacks a shifter).
    Assembler a("fs");
    a.mul(t2, t0, t1);
    a.srai(t3, t2, 14);
    a.sw(t3, s2, 0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1});
    ASSERT_NE(cand, nullptr);

    for (auto kind :
         {PatchKind::ATMA, PatchKind::ATAS, PatchKind::ATSA})
        EXPECT_FALSE(
            mapCandidate(dfg, *cand, AccelTarget::single(kind)).ok);

    auto fused = mapCandidate(
        dfg, *cand,
        AccelTarget::fused(PatchKind::ATMA, PatchKind::ATAS));
    ASSERT_TRUE(fused.ok);
    EXPECT_TRUE(fused.cfg.usesRemote);
    EXPECT_EQ(fused.cfg.localKind, PatchKind::ATMA);
    EXPECT_EQ(fused.cfg.remoteKind, PatchKind::ATAS);
    expectSemanticsMatch(dfg, *cand, fused, 17);
}

TEST(Mapper, FusedRejectsRemoteMemory)
{
    // shift -> add -> SPM load: the load would have to execute on
    // the remote patch, which the mapper forbids.
    Assembler a("rm");
    a.sll(t1, t0, t3);  // n0
    a.add(t2, s2, t1);  // n1
    a.lw(t4, t2, 0);    // n2
    a.sw(t4, s3, 0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2, s3});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1, 2});
    ASSERT_NE(cand, nullptr);
    EXPECT_FALSE(mapCandidate(dfg, *cand,
                              AccelTarget::fused(PatchKind::ATSA,
                                                 PatchKind::ATMA))
                     .ok);
}

TEST(Mapper, LocusAcceptsChainsOnly)
{
    Assembler a("lc");
    a.mul(t2, t0, t1);
    a.add(t3, t2, t4);
    a.srl(t5, t3, t0);
    a.sw(t5, s2, 0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2});
    auto cands = identifyCandidates(dfg);
    const auto *chain = candidateWith(cands, {0, 1, 2});
    ASSERT_NE(chain, nullptr);
    auto map = mapCandidate(dfg, *chain, AccelTarget::locus());
    ASSERT_TRUE(map.ok);
    EXPECT_TRUE(map.isLocus);
    EXPECT_EQ(map.micro.size(), 3);
}

TEST(Mapper, LocusRejectsMemory)
{
    Assembler a("lm");
    a.lw(t1, s2, 0);
    a.add(t2, t1, t0);
    a.sw(t2, s3, 0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog, {s2, s3});
    auto cands = identifyCandidates(dfg);
    const auto *cand = candidateWith(cands, {0, 1});
    ASSERT_NE(cand, nullptr);
    EXPECT_FALSE(mapCandidate(dfg, *cand, AccelTarget::locus()).ok);
}

TEST(Mapper, TargetNames)
{
    EXPECT_EQ(AccelTarget::single(PatchKind::ATMA).name(), "{AT-MA}");
    EXPECT_EQ(
        AccelTarget::fused(PatchKind::ATAS, PatchKind::ATSA).name(),
        "{AT-AS,AT-SA}");
    EXPECT_EQ(AccelTarget::locus().name(), "LOCUS-SFU");
}

/** Property sweep: every profitable mapped candidate of a synthetic
 *  block matches its micro-DFG semantics, across all targets. */
class MapperCrossValidation : public ::testing::TestWithParam<int>
{
};

TEST_P(MapperCrossValidation, RandomBlocks)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
    Assembler a("rand");
    // Random straight-line compute over a few registers.
    const RegId regs[] = {t0, t1, t2, t3, t4, t5};
    for (int i = 0; i < 12; ++i) {
        RegId rd = regs[rng.range(0, 5)];
        RegId ra = regs[rng.range(0, 5)];
        RegId rb = regs[rng.range(0, 5)];
        switch (rng.range(0, 5)) {
          case 0: a.add(rd, ra, rb); break;
          case 1: a.sub(rd, ra, rb); break;
          case 2: a.mul(rd, ra, rb); break;
          case 3: a.xor_(rd, ra, rb); break;
          case 4: a.slli(rd, ra, static_cast<std::int32_t>(
                                     rng.range(1, 7)));
                  break;
          case 5: a.srai(rd, ra, static_cast<std::int32_t>(
                                     rng.range(1, 7)));
                  break;
        }
    }
    a.halt();
    auto prog = a.finish();
    Dfg dfg = dfgOf(prog);
    auto cands = identifyCandidates(dfg);
    std::vector<AccelTarget> targets = allStitchTargets();
    int mapped = 0;
    for (const auto &cand : cands) {
        for (const auto &target : targets) {
            auto map = mapCandidate(dfg, cand, target);
            if (!map.ok)
                continue;
            ++mapped;
            expectSemanticsMatch(dfg, cand, map,
                                 rng.next() | 1);
            if (mapped > 60)
                return; // plenty of evidence per seed
        }
    }
    EXPECT_GT(mapped, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperCrossValidation,
                         ::testing::Range(0, 12));

} // namespace
} // namespace stitch::compiler

/** @file RTL timing/area model tests against the paper's Table IV /
 *  Section VI-D numbers. */

#include <gtest/gtest.h>

#include "core/arch.hh"
#include "core/snoc_timing.hh"

namespace stitch::core
{
namespace
{

TEST(Timing, TableIvDelays)
{
    EXPECT_DOUBLE_EQ(patchDelayNs(PatchKind::ATMA), 1.38);
    EXPECT_DOUBLE_EQ(patchDelayNs(PatchKind::ATAS), 1.12);
    EXPECT_DOUBLE_EQ(patchDelayNs(PatchKind::ATSA), 1.02);
    EXPECT_DOUBLE_EQ(rtl::switchDelayNs, 0.17);
    // "3 hops: 0.3 ns".
    EXPECT_DOUBLE_EQ(3 * rtl::wirePerHopNs, 0.3);
}

TEST(Timing, SinglePatchCriticalPath)
{
    // Paper: "single {AT-SA} including the NoC overhead: 2 x 0.17".
    EXPECT_NEAR(singleCriticalPathNs(PatchKind::ATSA), 1.36, 1e-9);
    EXPECT_NEAR(singleCriticalPathNs(PatchKind::ATMA), 1.72, 1e-9);
}

TEST(Timing, PaperWorstCaseCriticalPathIs4p63ns)
{
    // switch + AT-MA + switch + 3 hops (wire+switch each) + AT-AS +
    // 3 hops + switch = 4.63 ns (paper Section VI-D).
    double ns = fusedCriticalPathNs(PatchKind::ATMA, PatchKind::ATAS,
                                    3, 3);
    EXPECT_NEAR(ns, 4.63, 1e-9);
    EXPECT_TRUE(fitsClock(ns));
}

TEST(Timing, SevenHopRoundTripMissesTheClock)
{
    double ns = fusedCriticalPathNs(PatchKind::ATMA, PatchKind::ATMA,
                                    4, 3);
    EXPECT_GT(ns, rtl::clockPeriodNs);
    EXPECT_FALSE(fitsClock(ns));
}

TEST(Timing, BestCaseFusionIsWellInsideTheClock)
{
    double ns = fusedCriticalPathNs(PatchKind::ATSA, PatchKind::ATSA,
                                    1, 1);
    EXPECT_LT(ns, rtl::clockPeriodNs / 2 + 1.0);
    EXPECT_TRUE(fitsClock(ns));
}

TEST(Timing, FrequencyDerivation)
{
    EXPECT_NEAR(pathFrequencyMhz(5.0), 200.0, 1e-9);
    EXPECT_GT(pathFrequencyMhz(4.63), 200.0);
}

TEST(Area, TableIvPatchAreas)
{
    EXPECT_DOUBLE_EQ(patchAreaUm2(PatchKind::ATMA), 4152.0);
    EXPECT_DOUBLE_EQ(patchAreaUm2(PatchKind::ATAS), 2096.0);
    EXPECT_DOUBLE_EQ(patchAreaUm2(PatchKind::ATSA), 2157.0);
    EXPECT_DOUBLE_EQ(rtl::switchAreaUm2, 7423.0);
}

TEST(Area, ChipAccumulationMatchesTableIII)
{
    // 8 {AT-MA} + 4 {AT-AS} + 4 {AT-SA} + 16 switches should land
    // close to the paper's 168,568 um^2 total accelerator area.
    auto arch = StitchArch::standard();
    double total = 0;
    for (TileId t = 0; t < numTiles; ++t)
        total += patchAreaUm2(arch.kindOf(t));
    total += numTiles * rtl::switchAreaUm2;
    EXPECT_NEAR(total, 168568.0, 600.0);
}

TEST(Area, PatchOnlyAreaMatchesNoFusionRow)
{
    // Without fusion the accelerator area is just the patches:
    // paper Table III reports 49,872 um^2.
    auto arch = StitchArch::standard();
    double total = 0;
    for (TileId t = 0; t < numTiles; ++t)
        total += patchAreaUm2(arch.kindOf(t));
    EXPECT_NEAR(total, 49872.0, 400.0);
}

} // namespace
} // namespace stitch::core

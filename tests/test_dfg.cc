/** @file Basic-block partitioning, DFG construction, liveness and
 *  SPM-pointer analysis tests. */

#include <gtest/gtest.h>

#include "compiler/dfg.hh"
#include "compiler/liveness.hh"
#include "isa/assembler.hh"
#include "mem/addrmap.hh"

namespace stitch::compiler
{
namespace
{

using namespace isa::reg;
using isa::Assembler;

isa::Program
loopProgram()
{
    Assembler a("loop");
    auto loop = a.newLabel();
    a.li(t0, 0);  // 0
    a.li(t1, 8);  // 1
    a.bind(loop);
    a.addi(t0, t0, 1);   // 2
    a.blt(t0, t1, loop); // 3
    a.halt();            // 4
    return a.finish();
}

TEST(BasicBlocks, LoopSplitsIntoThreeBlocks)
{
    auto prog = loopProgram();
    auto blocks = findBasicBlocks(prog, {});
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0].begin, 0u);
    EXPECT_EQ(blocks[0].end, 2u);
    EXPECT_EQ(blocks[1].begin, 2u);
    EXPECT_EQ(blocks[1].end, 4u); // includes the branch
    EXPECT_EQ(blocks[2].begin, 4u);
}

TEST(BasicBlocks, ExecCountsAttach)
{
    auto prog = loopProgram();
    std::vector<std::uint64_t> counts = {1, 1, 8, 8, 1};
    auto blocks = findBasicBlocks(prog, counts);
    EXPECT_EQ(blocks[1].execCount, 8u);
}

TEST(BasicBlocks, JalTargetIsLeader)
{
    Assembler a("j");
    auto fn = a.newLabel();
    a.jal(ra, fn); // 0
    a.halt();      // 1
    a.bind(fn);
    a.addi(t0, t0, 1); // 2
    a.halt();          // 3
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[2].begin, 2u);
}

TEST(Dfg, DataflowEdgesAndOperands)
{
    Assembler a("d");
    a.add(t2, t0, t1);  // n0
    a.mul(t3, t2, t0);  // n1 reads n0
    a.slli(t4, t3, 2);  // n2 reads n1
    a.halt();
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    Dfg dfg = Dfg::build(prog, blocks[0], {});
    ASSERT_EQ(dfg.size(), 4);
    EXPECT_EQ(dfg.node(0).op, NodeOp::Alu);
    EXPECT_EQ(dfg.node(1).op, NodeOp::Mul);
    EXPECT_EQ(dfg.node(2).op, NodeOp::Shift);
    // n1's lhs is n0; rhs is the live-in register t0.
    EXPECT_EQ(dfg.node(1).operands[0].kind, OperandRef::Kind::Node);
    EXPECT_EQ(dfg.node(1).operands[0].node, 0);
    EXPECT_EQ(dfg.node(1).operands[1].kind, OperandRef::Kind::Reg);
    EXPECT_EQ(dfg.node(1).operands[1].reg, t0);
    // n2's shift amount is an immediate.
    EXPECT_EQ(dfg.node(2).operands[1].kind, OperandRef::Kind::Imm);
    EXPECT_EQ(dfg.node(2).operands[1].imm, 2);
    // consumers
    EXPECT_EQ(dfg.consumersOf(0), (std::vector<int>{1}));
}

TEST(Dfg, ReadsOfR0BecomeImmediateZero)
{
    Assembler a("z");
    a.add(t0, zero, t1);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = Dfg::build(prog, findBasicBlocks(prog, {})[0], {});
    EXPECT_EQ(dfg.node(0).operands[0].kind, OperandRef::Kind::Imm);
    EXPECT_EQ(dfg.node(0).operands[0].imm, 0);
}

TEST(Dfg, SpmTaintPropagatesThroughAddressArithmetic)
{
    Assembler a("spm");
    a.add(t1, s2, t0);  // n0: SPM pointer + offset
    a.lw(t2, t1, 0);    // n1: SPM load
    a.lw(t3, t0, 0);    // n2: plain cached load
    a.halt();
    auto prog = a.finish();
    Dfg dfg = Dfg::build(prog, findBasicBlocks(prog, {})[0], {s2});
    EXPECT_EQ(dfg.node(1).op, NodeOp::Load);
    EXPECT_TRUE(dfg.node(1).isSpmMem);
    EXPECT_EQ(dfg.node(2).op, NodeOp::Other);
    EXPECT_TRUE(dfg.node(2).isMem);
}

TEST(Dfg, StoreNodeHasAddressAndData)
{
    Assembler a("st");
    a.sw(t3, s2, 8);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = Dfg::build(prog, findBasicBlocks(prog, {})[0], {s2});
    ASSERT_EQ(dfg.node(0).op, NodeOp::Store);
    ASSERT_EQ(dfg.node(0).operands.size(), 3u);
    EXPECT_EQ(dfg.node(0).operands[1].imm, 8);
    EXPECT_EQ(dfg.node(0).operands[2].reg, t3);
    EXPECT_FALSE(dfg.node(0).def.has_value());
}

TEST(Dfg, MemoryOrderingEdges)
{
    Assembler a("mo");
    a.sw(t0, s2, 0); // n0 store
    a.lw(t1, s2, 0); // n1 load after store: ordered
    a.lw(t2, s2, 4); // n2 load: no edge from n1 (load-load)
    a.halt();
    auto prog = a.finish();
    Dfg dfg = Dfg::build(prog, findBasicBlocks(prog, {})[0], {s2});
    const auto &succ0 = dfg.orderSuccs()[0];
    EXPECT_NE(std::find(succ0.begin(), succ0.end(), 1), succ0.end());
    EXPECT_NE(std::find(succ0.begin(), succ0.end(), 2), succ0.end());
    const auto &succ1 = dfg.orderSuccs()[1];
    EXPECT_EQ(std::find(succ1.begin(), succ1.end(), 2), succ1.end());
}

TEST(Dfg, WarWawEdges)
{
    Assembler a("ww");
    a.add(t1, t0, t0); // n0 defines t1
    a.add(t2, t1, t0); // n1 reads t1
    a.add(t1, t0, t0); // n2 redefines t1: WAW n0->n2, WAR n1->n2
    a.halt();
    auto prog = a.finish();
    Dfg dfg = Dfg::build(prog, findBasicBlocks(prog, {})[0], {});
    const auto &succ0 = dfg.orderSuccs()[0];
    const auto &succ1 = dfg.orderSuccs()[1];
    EXPECT_NE(std::find(succ0.begin(), succ0.end(), 2), succ0.end());
    EXPECT_NE(std::find(succ1.begin(), succ1.end(), 2), succ1.end());
    // n1 reads the OLD t1: its operand references n0, not n2.
    EXPECT_EQ(dfg.node(1).operands[0].node, 0);
}

TEST(Dfg, EscapeWithoutLivenessIsConservative)
{
    Assembler a("esc");
    a.add(t1, t0, t0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = Dfg::build(prog, findBasicBlocks(prog, {})[0], {});
    EXPECT_TRUE(dfg.defEscapesBlock(0));
}

TEST(Liveness, LoopScratchIsDead)
{
    // t2 is recomputed every iteration before use: dead at the back
    // edge; t0 is the induction variable: live.
    Assembler a("lv");
    auto loop = a.newLabel();
    a.li(t0, 0);
    a.li(t1, 4);
    a.bind(loop);
    a.slli(t2, t0, 2);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, loop);
    a.halt();
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    auto outs = blockLiveOuts(prog, blocks);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_TRUE(outs[1].count(t0));
    EXPECT_TRUE(outs[1].count(t1));
    EXPECT_FALSE(outs[1].count(t2));
}

TEST(Liveness, ValueReadAfterLoopIsLive)
{
    Assembler a("lv2");
    auto loop = a.newLabel();
    a.li(t0, 0);
    a.bind(loop);
    a.add(t2, t0, t0);
    a.addi(t0, t0, 1);
    a.slti(t3, t0, 4);
    a.bne(t3, zero, loop);
    a.sw(t2, s2, 0); // reads t2 after the loop
    a.halt();
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    auto outs = blockLiveOuts(prog, blocks);
    EXPECT_TRUE(outs[1].count(t2));
}

TEST(Liveness, JalrMakesEverythingLive)
{
    Assembler a("lv3");
    a.add(t0, t1, t2);
    a.jalr(zero, ra, 0);
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    auto outs = blockLiveOuts(prog, blocks);
    EXPECT_TRUE(outs[0].count(t9));
    EXPECT_TRUE(outs[0].count(s5));
}

TEST(SpmPointers, FlowAcrossBlocks)
{
    // The pointer is derived in one block and dereferenced in the
    // next (the matmul row-pointer pattern).
    Assembler a("sp");
    auto loop = a.newLabel();
    a.li(s2, static_cast<std::int32_t>(mem::spmBase));
    a.li(t0, 0);
    a.bind(loop);
    a.add(t1, s2, t0); // pointer arithmetic
    a.lw(t2, t1, 0);
    a.addi(t0, t0, 4);
    a.slti(t3, t0, 64);
    a.bne(t3, zero, loop);
    a.halt();
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    auto spmIns = blockSpmPointers(prog, blocks, {});
    // The loop block (containing the lw) must see s2 as SPM.
    bool found = false;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        for (std::size_t i = blocks[b].begin; i < blocks[b].end; ++i) {
            if (prog.code()[i].op == isa::Opcode::Lw) {
                EXPECT_TRUE(spmIns[b].count(s2));
                found = true;
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(SpmPointers, OverwritingKillsTheTaint)
{
    Assembler a("sp2");
    a.li(s2, static_cast<std::int32_t>(mem::spmBase));
    a.mul(s2, t0, t1); // s2 no longer a pointer
    a.halt();
    auto prog = a.finish();
    auto blocks = findBasicBlocks(prog, {});
    Dfg dfg = Dfg::build(prog, blocks[0], {});
    // A load through the clobbered register must not be SPM.
    Assembler b("sp3");
    b.li(s2, static_cast<std::int32_t>(mem::spmBase));
    b.mul(s2, t0, t1);
    b.lw(t2, s2, 0);
    b.halt();
    auto prog2 = b.finish();
    auto blocks2 = findBasicBlocks(prog2, {});
    auto spmIns = blockSpmPointers(prog2, blocks2, {});
    Dfg dfg2 = Dfg::build(
        prog2, blocks2[0],
        std::vector<RegId>(spmIns[0].begin(), spmIns[0].end()));
    // Find the load node.
    for (int i = 0; i < dfg2.size(); ++i) {
        if (dfg2.node(i).isMem) {
            EXPECT_FALSE(dfg2.node(i).isSpmMem);
        }
    }
}

TEST(Dfg, ToStringSmokes)
{
    Assembler a("ts");
    a.add(t1, t0, t0);
    a.halt();
    auto prog = a.finish();
    Dfg dfg = Dfg::build(prog, findBasicBlocks(prog, {})[0], {});
    EXPECT_NE(dfg.toString().find("alu.add"), std::string::npos);
}

} // namespace
} // namespace stitch::compiler
